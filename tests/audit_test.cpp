// Tests for the pre-solve static audit (src/analyze/{nlp_audit, graph_audit,
// audit}): one positive and one clean-instance case per NLP0xx/GRF0xx rule,
// the granularity advisor's cost-model decisions, the Report::merge
// deduplication contract, and the audit driver end to end.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/audit.h"
#include "analyze/diagnostic.h"
#include "analyze/graph_audit.h"
#include "analyze/nlp_audit.h"
#include "analyze/registry.h"
#include "netlist/generators.h"
#include "netlist/timing_view.h"
#include "nlp/auglag.h"
#include "nlp/problem.h"

namespace {

using namespace statsize;
using analyze::GranularityAdvice;
using analyze::GranularityCostModel;
using analyze::GraphAuditOptions;
using analyze::Report;
using analyze::Severity;
using netlist::CellLibrary;
using netlist::Circuit;
using netlist::NodeId;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

bool has_rule(const Report& report, const std::string& id) {
  for (const auto& d : report.diagnostics()) {
    if (d.id == id) return true;
  }
  return false;
}

int count_rule(const Report& report, const std::string& id) {
  int n = 0;
  for (const auto& d : report.diagnostics()) {
    if (d.id == id) ++n;
  }
  return n;
}

/// A minimal well-posed instance: minimize x0 + x1 subject to x0 * x1 = 1
/// (one Product element), everything referenced, sane scales and names.
nlp::Problem clean_problem() {
  nlp::Problem p;
  const int x0 = p.add_variable(1.0, 3.0, 1.5, "S_a");
  const int x1 = p.add_variable(1.0, 3.0, 1.5, "S_b");
  nlp::FunctionGroup obj;
  obj.linear.push_back({x0, 1.0});
  obj.linear.push_back({x1, 1.0});
  p.set_objective(std::move(obj));
  nlp::FunctionGroup c;
  c.constant = -1.0;
  c.elements.push_back({p.own(std::make_unique<nlp::ProductElement>()), {x0, x1}, 1.0});
  p.add_equality(std::move(c));
  return p;
}

/// Test element with a configurable arity, for the NLP004 cliff cases.
class WideElement final : public nlp::ElementFunction {
 public:
  explicit WideElement(int arity) : arity_(arity) {}
  int arity() const override { return arity_; }
  double eval(const double*, double*, double*) const override { return 0.0; }

 private:
  int arity_;
};

// ---------------------------------------------------------------------------
// NLP0xx — instance rules
// ---------------------------------------------------------------------------

TEST(NlpAudit, CleanInstanceIsClean) {
  const nlp::Problem p = clean_problem();
  const Report r = analyze::audit_nlp_problem(p, "test");
  EXPECT_TRUE(r.empty()) << "unexpected: " << r.summary();
}

TEST(NlpAudit, Nlp001FiresOnNanBound) {
  // add_variable rejects lower > upper eagerly, but NaN bounds pass every
  // comparison — the silent empty box NLP001 exists for.
  nlp::Problem p = clean_problem();
  p.add_variable(kNaN, 1.0, 1.0, "S_broken");
  const Report r = analyze::audit_nlp_problem(p, "test");
  EXPECT_TRUE(has_rule(r, "NLP001"));
  EXPECT_EQ(r.exit_code(), 3);
}

TEST(NlpAudit, Nlp002FiresOnCollapsedBound) {
  nlp::Problem p = clean_problem();
  const int pinned = p.add_variable(2.0, 2.0, 2.0, "S_pinned");
  nlp::FunctionGroup c;
  c.linear.push_back({pinned, 1.0});
  c.constant = -2.0;
  p.add_equality(std::move(c));
  const Report r = analyze::audit_nlp_problem(p, "test");
  EXPECT_TRUE(has_rule(r, "NLP002"));
  EXPECT_EQ(r.exit_code(), 0);  // a note, not a gate-tripping finding
}

TEST(NlpAudit, Nlp003FiresOnOrphanVariable) {
  nlp::Problem p = clean_problem();
  p.add_variable(1.0, 3.0, 1.0, "S_orphan");
  const Report r = analyze::audit_nlp_problem(p, "test");
  EXPECT_TRUE(has_rule(r, "NLP003"));
  EXPECT_FALSE(has_rule(r, "NLP001"));
}

TEST(NlpAudit, Nlp004WarnsAtArityCliffAndErrorsBeyondIt) {
  nlp::Problem p = clean_problem();
  const WideElement at_cliff(nlp::kMaxElementArity);
  const WideElement beyond(nlp::kMaxElementArity + 1);
  nlp::FunctionGroup c;
  c.elements.push_back({&at_cliff, std::vector<int>(nlp::kMaxElementArity, 0), 1.0});
  p.add_equality(std::move(c));
  Report r = analyze::audit_nlp_problem(p, "test");
  ASSERT_TRUE(has_rule(r, "NLP004"));
  EXPECT_EQ(r.exit_code(), 2);  // at the cliff: warning

  nlp::FunctionGroup c2;
  c2.elements.push_back({&beyond, std::vector<int>(nlp::kMaxElementArity + 1, 0), 1.0});
  p.add_equality(std::move(c2));
  r = analyze::audit_nlp_problem(p, "test");
  EXPECT_EQ(r.exit_code(), 3);  // beyond it: stack-buffer overflow, error
}

TEST(NlpAudit, Nlp005FiresOnConstantConstraint) {
  nlp::Problem p = clean_problem();
  nlp::FunctionGroup infeasible;
  infeasible.constant = 4.2;  // "4.2 = 0"
  p.add_equality(std::move(infeasible));
  nlp::FunctionGroup vacuous;  // "0 = 0"
  p.add_equality(std::move(vacuous));
  const Report r = analyze::audit_nlp_problem(p, "test");
  EXPECT_EQ(count_rule(r, "NLP005"), 2);
  EXPECT_EQ(r.exit_code(), 3);  // the non-zero constant variant is an error
}

TEST(NlpAudit, Nlp006FiresOnObjectiveVsConstraintScaleMismatch) {
  nlp::Problem p;
  const int x = p.add_variable(1.0, 3.0, 1.0, "S_a");
  nlp::FunctionGroup obj;
  obj.linear.push_back({x, 1.0});  // objective scale ~3
  p.set_objective(std::move(obj));
  nlp::FunctionGroup c;
  c.linear.push_back({x, 1e9});  // constraint scale ~3e9: ratio 1e9 > 1e6
  p.add_equality(std::move(c));
  const Report r = analyze::audit_nlp_problem(p, "test");
  EXPECT_TRUE(has_rule(r, "NLP006"));
}

TEST(NlpAudit, Nlp006FiresOnConstraintSpread) {
  nlp::Problem p;
  const int x = p.add_variable(1.0, 3.0, 1.0, "S_a");
  nlp::FunctionGroup obj;
  obj.linear.push_back({x, 1.0});
  p.set_objective(std::move(obj));
  nlp::FunctionGroup small;
  small.linear.push_back({x, 1.0});
  p.add_equality(std::move(small));
  nlp::FunctionGroup huge;
  huge.linear.push_back({x, 1e9});  // spread 1e9 > 1e8 default threshold
  p.add_equality(std::move(huge));
  const Report r = analyze::audit_nlp_problem(p, "test");
  EXPECT_TRUE(has_rule(r, "NLP006"));
}

TEST(NlpAudit, Nlp006SilentOnCommensurateScales) {
  const nlp::Problem p = clean_problem();
  const Report r = analyze::audit_nlp_problem(p, "test");
  EXPECT_FALSE(has_rule(r, "NLP006"));
}

TEST(NlpAudit, Nlp007FiresOnDuplicateVariableNames) {
  nlp::Problem p = clean_problem();
  const int dup = p.add_variable(1.0, 3.0, 1.0, "S_a");  // name already taken
  nlp::FunctionGroup c;
  c.linear.push_back({dup, 1.0});
  p.add_equality(std::move(c));
  const Report r = analyze::audit_nlp_problem(p, "test");
  EXPECT_TRUE(has_rule(r, "NLP007"));
}

TEST(NlpAudit, EstimateGroupScaleUsesBoundsAndWeights) {
  nlp::Problem p;
  const int x = p.add_variable(1.0, 5.0, 1.0, "S_a");
  nlp::FunctionGroup g;
  g.constant = 2.0;
  g.linear.push_back({x, 10.0});  // 10 * typical magnitude 5 = 50 dominates
  EXPECT_DOUBLE_EQ(analyze::estimate_group_scale(p, g), 50.0);
}

TEST(NlpAudit, Nlp008FiresOnBrokenAugLagState) {
  const nlp::Problem p = clean_problem();
  const nlp::AugLagModel clean(p, {0.0}, 10.0);
  EXPECT_TRUE(analyze::audit_auglag_state(clean, "test").empty());

  const nlp::AugLagModel nan_mult(p, {kNaN}, 10.0);
  EXPECT_TRUE(has_rule(analyze::audit_auglag_state(nan_mult, "test"), "NLP008"));

  const nlp::AugLagModel zero_rho(p, {0.0}, 0.0);
  EXPECT_TRUE(has_rule(analyze::audit_auglag_state(zero_rho, "test"), "NLP008"));
}

// ---------------------------------------------------------------------------
// Granularity advisor
// ---------------------------------------------------------------------------

TEST(GranularityAdvisor, SingleThreadNeverParallelizes) {
  GranularityCostModel model;
  model.threads = 1;
  const GranularityAdvice a = analyze::advise_granularity({1, 100, 10000}, model);
  for (const auto& d : a.levels) EXPECT_FALSE(d.parallel);
  EXPECT_EQ(a.serial_levels, 3);
  EXPECT_DOUBLE_EQ(a.serial_gate_fraction, 1.0);
}

TEST(GranularityAdvisor, CutoffSeparatesSerialFromParallel) {
  GranularityCostModel model;
  model.threads = 8;
  const GranularityAdvice a = analyze::advise_granularity({1, 8, 64, 512, 4096}, model);
  ASSERT_GT(a.serial_cutoff, 1u);
  ASSERT_LT(a.serial_cutoff, 4096u);
  for (const auto& d : a.levels) {
    EXPECT_EQ(d.parallel, d.width >= a.serial_cutoff) << "level " << d.level;
    if (d.parallel) {
      // At and beyond the cutoff the pool must be modeled as cheaper.
      EXPECT_LT(d.parallel_ns, d.serial_ns) << "level " << d.level;
    }
  }
  // The advised schedule can never be modeled slower than naive pooling.
  EXPECT_LE(a.est_advised_ns, a.est_naive_parallel_ns);
}

TEST(GranularityAdvisor, ExpensiveDispatchRaisesCutoff) {
  GranularityCostModel cheap;
  cheap.threads = 8;
  cheap.chunk_dispatch_ns = 200.0;
  GranularityCostModel pricey = cheap;
  pricey.chunk_dispatch_ns = 20000.0;
  EXPECT_LT(analyze::advise_granularity({64}, cheap).serial_cutoff,
            analyze::advise_granularity({64}, pricey).serial_cutoff);
}

TEST(GranularityAdvisor, ZeroGrainIsSanitized) {
  GranularityCostModel model;
  model.threads = 4;
  model.grain = 0;
  const GranularityAdvice a = analyze::advise_granularity({100}, model);
  EXPECT_EQ(a.model.grain, 1u);
}

// ---------------------------------------------------------------------------
// GRF0xx — graph rules
// ---------------------------------------------------------------------------

TEST(GraphAudit, CleanTreeHasNoStructuralFindings) {
  Circuit c = netlist::make_tree_circuit();  // generators finalize
  netlist::TimingViewStats stats;
  const Report r = analyze::audit_graph(c.view(), {}, &stats);
  EXPECT_FALSE(has_rule(r, "GRF001"));
  EXPECT_FALSE(has_rule(r, "GRF002"));
  EXPECT_FALSE(has_rule(r, "GRF004"));
  EXPECT_FALSE(has_rule(r, "GRF005"));
  EXPECT_EQ(stats.num_gates, 7);
  EXPECT_EQ(stats.num_edges, 14u);
  ASSERT_EQ(stats.level_widths.size(), 3u);
  EXPECT_EQ(stats.level_widths[0], 4u);
  EXPECT_EQ(stats.level_widths[2], 1u);
  EXPECT_EQ(stats.reconvergence_count, 0u);  // a tree, by construction
  EXPECT_EQ(stats.num_components, 1);
  EXPECT_EQ(stats.max_cone_size, 15u);  // the root's cone is the whole circuit
}

TEST(GraphAudit, ViewInvariantsHoldOnGeneratedCircuits) {
  for (const char* which : {"tree", "chain", "dag"}) {
    Circuit c = std::string(which) == "tree"   ? netlist::make_tree_circuit()
                : std::string(which) == "chain" ? netlist::make_chain(12)
                                                : netlist::make_mcnc_like("apex1");
    EXPECT_TRUE(netlist::check_view_invariants(c.view()).empty()) << which;
  }
}

TEST(GraphAudit, Grf002FiresOnZeroWidthLevels) {
  const std::vector<std::size_t> widths = {4, 0, 9, 0};
  const GranularityAdvice advice = analyze::advise_granularity(widths);
  const Report r = analyze::audit_level_widths(widths, advice);
  EXPECT_EQ(count_rule(r, "GRF002"), 2);
  EXPECT_EQ(r.exit_code(), 3);
}

TEST(GraphAudit, Grf003FiresWhenSerialGatesDominate) {
  GraphAuditOptions options;
  options.cost.threads = 8;
  const std::vector<std::size_t> narrow = {2, 3, 2, 4};  // all below any sane cutoff
  const Report r =
      analyze::audit_level_widths(narrow, analyze::advise_granularity(narrow, options.cost),
                                  options);
  EXPECT_TRUE(has_rule(r, "GRF003"));

  const std::vector<std::size_t> wide = {2, 100000};  // bulk of gates pool-worthy
  const Report clean =
      analyze::audit_level_widths(wide, analyze::advise_granularity(wide, options.cost),
                                  options);
  EXPECT_FALSE(has_rule(clean, "GRF003"));
}

TEST(GraphAudit, Grf004FiresOnFanoutSkew) {
  const CellLibrary& lib = CellLibrary::standard();
  const int inv = lib.cell_for_inputs(1);
  Circuit c(lib);
  const NodeId a = c.add_input("a");
  const NodeId root = c.add_gate(inv, {a}, "root");
  for (int i = 0; i < 40; ++i) {
    const NodeId leaf = c.add_gate(inv, {root}, "leaf" + std::to_string(i));
    c.mark_output(leaf, 1.0);
  }
  c.finalize();
  netlist::TimingViewStats stats;
  const Report r = analyze::audit_graph(c.view(), {}, &stats);
  EXPECT_EQ(stats.max_fanout, 40u);
  EXPECT_EQ(stats.max_fanout_node, root);
  EXPECT_TRUE(has_rule(r, "GRF004"));
}

TEST(GraphAudit, Grf005FiresOnReconvergence) {
  // Two stacked diamonds: every gate pair reconverges, Betti number 2 over 8
  // edges. The default 0.25 threshold needs a nudge — the rule is judged at
  // the option surface, which is exactly what the test pins down.
  const CellLibrary& lib = CellLibrary::standard();
  const int inv = lib.cell_for_inputs(1);
  const int nand2 = lib.cell_for_inputs(2);
  Circuit c(lib);
  const NodeId a = c.add_input("a");
  const NodeId l1 = c.add_gate(inv, {a}, "l1");
  const NodeId r1 = c.add_gate(inv, {a}, "r1");
  const NodeId m = c.add_gate(nand2, {l1, r1}, "m");
  const NodeId l2 = c.add_gate(inv, {m}, "l2");
  const NodeId r2 = c.add_gate(inv, {m}, "r2");
  const NodeId out = c.add_gate(nand2, {l2, r2}, "out");
  c.mark_output(out, 1.0);
  c.finalize();

  GraphAuditOptions sensitive;
  sensitive.reconvergence_ratio_threshold = 0.2;
  netlist::TimingViewStats stats;
  const Report r = analyze::audit_graph(c.view(), sensitive, &stats);
  EXPECT_EQ(stats.reconvergence_count, 2u);
  EXPECT_TRUE(has_rule(r, "GRF005"));

  Circuit chain = netlist::make_chain(6);
  const Report clean = analyze::audit_graph(chain.view(), sensitive);
  EXPECT_FALSE(has_rule(clean, "GRF005"));
}

TEST(GraphAudit, Grf006FiresOnDeepNarrowGraphs) {
  Circuit deep = netlist::make_chain(24);  // 24 levels at mean width 1
  EXPECT_TRUE(has_rule(analyze::audit_graph(deep.view()), "GRF006"));

  Circuit shallow = netlist::make_tree_circuit();  // 3 levels, mean width 2.3
  EXPECT_FALSE(has_rule(analyze::audit_graph(shallow.view()), "GRF006"));
}

// ---------------------------------------------------------------------------
// Report::merge deduplication + locus prefixing (multi-input lint)
// ---------------------------------------------------------------------------

TEST(ReportMerge, DropsIdenticalDiagnostics) {
  Report a;
  a.add("CIR001", "gate 'g'", "cycle");
  Report b;
  b.add("CIR001", "gate 'g'", "cycle");      // identical triple: dropped
  b.add("CIR001", "gate 'h'", "cycle");      // different locus: kept
  b.add("CIR001", "gate 'g'", "other text"); // different message: kept
  a.merge(std::move(b));
  EXPECT_EQ(a.count(Severity::kError), 3);
  // Self-merge of an already-merged report adds nothing.
  Report c;
  c.add("CIR001", "gate 'g'", "cycle");
  a.merge(std::move(c));
  EXPECT_EQ(a.count(Severity::kError), 3);
}

TEST(ReportMerge, PrefixLociNamesTheInputFile) {
  Report r;
  r.add("CIR001", "gate 'g'", "cycle");
  r.prefix_loci("a.blif");
  EXPECT_EQ(r.diagnostics()[0].locus, "a.blif: gate 'g'");
}

// ---------------------------------------------------------------------------
// Audit driver end to end
// ---------------------------------------------------------------------------

TEST(AuditDriver, TreeAuditCarriesAnalyticsAndIsErrorFree) {
  Circuit c = netlist::make_tree_circuit();
  const analyze::AuditResult result = analyze::audit_circuit(c);
  EXPECT_TRUE(result.has_view);
  EXPECT_TRUE(result.has_nlp);
  EXPECT_FALSE(result.report.has_errors());
  EXPECT_GT(result.nlp_vars, 0);
  EXPECT_GT(result.nlp_constraints, 0);
  EXPECT_EQ(result.advice.levels.size(), result.stats.level_widths.size());

  std::ostringstream json;
  analyze::write_audit_json(json, result, "tree");
  EXPECT_NE(json.str().find("\"granularity_advisor\""), std::string::npos);
  EXPECT_NE(json.str().find("\"serial_cutoff\""), std::string::npos);
  EXPECT_NE(json.str().find("\"graph_stats\""), std::string::npos);
  EXPECT_NE(json.str().find("\"nlp_instance\""), std::string::npos);
}

TEST(AuditDriver, StructurallyBrokenCircuitStopsAtTheStructuralGate) {
  const CellLibrary& lib = CellLibrary::standard();
  Circuit c(lib);
  const NodeId a = c.add_input("a");
  const NodeId x = c.add_gate_deferred(lib.cell_for_inputs(2), "x");
  const NodeId y = c.add_gate_deferred(lib.cell_for_inputs(2), "y");
  c.set_fanin(x, 0, y);
  c.set_fanin(x, 1, a);
  c.set_fanin(y, 0, x);
  c.set_fanin(y, 1, a);
  c.mark_output(x, 1.0);
  const analyze::AuditResult result = analyze::audit_circuit(c);
  EXPECT_TRUE(result.report.has_errors());
  EXPECT_FALSE(result.has_view);  // never finalized, no graph analytics
  EXPECT_FALSE(result.has_nlp);
}

TEST(AuditDriver, MissingFileBecomesParseDiagnostic) {
  const analyze::AuditResult result =
      analyze::audit_file("/nonexistent/x.blif", CellLibrary::standard());
  EXPECT_TRUE(has_rule(result.report, "PAR001"));
}

TEST(AuditRegistry, NewRuleFamiliesAreCataloged) {
  for (const char* id : {"NLP001", "NLP008", "GRF001", "GRF006", "DET001", "DET004"}) {
    EXPECT_NE(analyze::find_rule(id), nullptr) << id;
  }
}

}  // namespace
