// Tests for the correlation-aware canonical-form SSTA (the paper's
// future-work extension): the form algebra, the correlated Clark max, and
// whole-circuit accuracy against Monte Carlo — where it must beat the
// independence-assuming engine on reconvergent circuits.

#include "ssta/canonical.h"

#include "netlist/generators.h"
#include "ssta/monte_carlo.h"
#include "ssta/ssta.h"
#include "stat/clark.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace statsize::ssta {
namespace {

using netlist::Circuit;
using netlist::NodeId;
using stat::NormalRV;

TEST(CorrelatedClark, ZeroCovarianceMatchesIndependent) {
  const NormalRV a{2.0, 1.5};
  const NormalRV b{2.5, 0.7};
  const NormalRV ind = stat::clark_max(a, b);
  const NormalRV cor = stat::clark_max_correlated(a, b, 0.0);
  EXPECT_NEAR(cor.mu, ind.mu, 1e-14);
  EXPECT_NEAR(cor.var, ind.var, 1e-14);
}

TEST(CorrelatedClark, PerfectCorrelationIsDeterministicChoice) {
  // A and B = A + 1 (same variance, cov = var): max = B surely.
  const NormalRV a{2.0, 1.0};
  const NormalRV b{3.0, 1.0};
  double tightness = -1.0;
  const NormalRV c = stat::clark_max_correlated(a, b, 1.0, &tightness);
  EXPECT_DOUBLE_EQ(c.mu, 3.0);
  EXPECT_DOUBLE_EQ(c.var, 1.0);
  EXPECT_DOUBLE_EQ(tightness, 0.0);
}

class CorrelatedClarkVsMc : public ::testing::TestWithParam<double> {};

TEST_P(CorrelatedClarkVsMc, MomentsMatchSampling) {
  const double rho = GetParam();
  const NormalRV a{1.0, 1.0};
  const NormalRV b{1.4, 2.25};
  const double cov = rho * std::sqrt(a.var * b.var);
  const NormalRV c = stat::clark_max_correlated(a, b, cov);

  // Sample (A, B) jointly normal via Cholesky.
  std::mt19937_64 rng(77);
  std::normal_distribution<double> unit(0.0, 1.0);
  const double sa = std::sqrt(a.var);
  const double sb = std::sqrt(b.var);
  const int n = 400000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z1 = unit(rng);
    const double z2 = unit(rng);
    const double xa = a.mu + sa * z1;
    const double xb = b.mu + sb * (rho * z1 + std::sqrt(1.0 - rho * rho) * z2);
    const double m = std::max(xa, xb);
    sum += m;
    sum2 += m * m;
  }
  const double mc_mu = sum / n;
  const double mc_var = sum2 / n - mc_mu * mc_mu;
  EXPECT_NEAR(c.mu, mc_mu, 0.01) << "rho=" << rho;
  EXPECT_NEAR(c.var, mc_var, 0.02) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Rhos, CorrelatedClarkVsMc,
                         ::testing::Values(-0.8, -0.3, 0.0, 0.3, 0.7, 0.95));

TEST(CanonicalFormTest, VarianceAndCovarianceAlgebra) {
  const CanonicalForm a = CanonicalForm::variable(1.0, 3, 0.5);
  const CanonicalForm b = CanonicalForm::variable(2.0, 3, 0.2);
  const CanonicalForm c = CanonicalForm::variable(0.5, 7, 1.0);

  EXPECT_DOUBLE_EQ(a.variance(), 0.25);
  EXPECT_DOUBLE_EQ(CanonicalForm::covariance(a, b), 0.1);   // shared source 3
  EXPECT_DOUBLE_EQ(CanonicalForm::covariance(a, c), 0.0);   // disjoint

  const CanonicalForm ab = CanonicalForm::add(a, b);
  EXPECT_DOUBLE_EQ(ab.mean(), 3.0);
  EXPECT_DOUBLE_EQ(ab.variance(), 0.49);  // (0.5 + 0.2)^2, fully correlated

  const CanonicalForm ac = CanonicalForm::add(a, c);
  EXPECT_DOUBLE_EQ(ac.variance(), 1.25);  // independent adds in quadrature
  EXPECT_EQ(ac.terms().size(), 2u);
}

TEST(CanonicalFormTest, AddCancellingCoefficientDropsTerm) {
  const CanonicalForm a = CanonicalForm::variable(0.0, 1, 0.7);
  const CanonicalForm b = CanonicalForm::variable(0.0, 1, -0.7);
  const CanonicalForm sum = CanonicalForm::add(a, b);
  EXPECT_TRUE(sum.terms().empty());
  EXPECT_DOUBLE_EQ(sum.variance(), 0.0);
}

TEST(CanonicalFormTest, MaxMatchesClarkMomentsForIndependentOperands) {
  int next = 100;
  const CanonicalForm a = CanonicalForm::variable(1.0, 1, 1.0);
  const CanonicalForm b = CanonicalForm::variable(1.5, 2, 0.8);
  const CanonicalForm m = CanonicalForm::max(a, b, next);
  const NormalRV want = stat::clark_max(a.to_normal(), b.to_normal());
  EXPECT_NEAR(m.mean(), want.mu, 1e-12);
  EXPECT_NEAR(m.variance(), want.var, 1e-12);
  EXPECT_GT(next, 100);  // residual allocated
}

TEST(CanonicalFormTest, MaxOfIdenticalFormsIsIdentity) {
  // max(T, T) = T exactly; the correlated max must recognize theta = 0.
  int next = 100;
  CanonicalForm t = CanonicalForm::variable(2.0, 5, 0.6);
  t = CanonicalForm::add(t, CanonicalForm::variable(1.0, 6, 0.3));
  const CanonicalForm m = CanonicalForm::max(t, t, next);
  EXPECT_DOUBLE_EQ(m.mean(), t.mean());
  EXPECT_DOUBLE_EQ(m.variance(), t.variance());
  EXPECT_EQ(next, 100);  // no residual needed
}

TEST(CanonicalSsta, MatchesIndependentSstaOnTree) {
  // No reconvergence -> the independence assumption is exact and both
  // engines agree.
  const Circuit c = netlist::make_tree_circuit();
  const DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const auto delays = calc.all_delays(speed);
  const NormalRV ind = run_ssta(c, delays).circuit_delay;
  const NormalRV can = run_canonical_ssta(c, delays).circuit_delay_normal();
  EXPECT_NEAR(can.mu, ind.mu, 1e-9);
  EXPECT_NEAR(can.var, ind.var, 1e-9);
}

TEST(CanonicalSsta, SharedPathVarianceIsExact) {
  // A chain feeding two parallel branches that reconverge in a max: the
  // shared chain's variance must appear ONCE. Construct: pi -> g0 -> {g1,g2}
  // -> g3(max). Independence SSTA double-counts g0's sigma inside the max;
  // the canonical engine must not.
  const netlist::CellLibrary& lib = netlist::CellLibrary::standard();
  netlist::Circuit c(lib);
  const NodeId pi = c.add_input("a");
  const NodeId g0 = c.add_gate(lib.find("INV"), {pi}, "g0");
  const NodeId g1 = c.add_gate(lib.find("INV"), {g0}, "g1");
  const NodeId g2 = c.add_gate(lib.find("INV"), {g0}, "g2");
  const NodeId g3 = c.add_gate(lib.find("NAND2"), {g1, g2}, "g3");
  c.mark_output(g3);
  c.finalize();

  const DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const auto delays = calc.all_delays(speed);

  const NormalRV can = run_canonical_ssta(c, delays).circuit_delay_normal();
  MonteCarloOptions opt;
  opt.num_samples = 200000;
  opt.truncate_negative_delays = false;
  const MonteCarloResult mc = run_monte_carlo(c, delays, opt);
  EXPECT_NEAR(can.mu, mc.mean, 0.01 * mc.mean);
  EXPECT_NEAR(can.sigma(), mc.stddev, 0.03 * mc.stddev);

  // And the independence engine really is wrong here (sanity of the test).
  const NormalRV ind = run_ssta(c, delays).circuit_delay;
  EXPECT_GT(std::abs(ind.sigma() - mc.stddev), std::abs(can.sigma() - mc.stddev));
}

struct DagCase {
  int gates;
  int inputs;
  unsigned seed;
};

class CanonicalVsIndependent : public ::testing::TestWithParam<DagCase> {};

TEST_P(CanonicalVsIndependent, CanonicalSigmaIsFarCloserToMonteCarlo) {
  const DagCase& p = GetParam();
  netlist::RandomDagParams rp;
  rp.num_gates = p.gates;
  rp.num_inputs = p.inputs;
  rp.seed = p.seed;
  const Circuit c = netlist::make_random_dag(rp);
  const DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const auto delays = calc.all_delays(speed);

  const NormalRV ind = run_ssta(c, delays).circuit_delay;
  const NormalRV can = run_canonical_ssta(c, delays).circuit_delay_normal();
  MonteCarloOptions opt;
  opt.num_samples = 30000;
  opt.seed = 17;
  opt.truncate_negative_delays = false;
  const MonteCarloResult mc = run_monte_carlo(c, delays, opt);

  const double err_ind_sigma = std::abs(ind.sigma() - mc.stddev);
  const double err_can_sigma = std::abs(can.sigma() - mc.stddev);
  EXPECT_LT(err_can_sigma, 0.5 * err_ind_sigma)
      << "ind sigma " << ind.sigma() << " can sigma " << can.sigma() << " mc " << mc.stddev;
  EXPECT_NEAR(can.mu, mc.mean, 0.02 * mc.mean);
  EXPECT_NEAR(can.sigma(), mc.stddev, 0.25 * mc.stddev);
}

INSTANTIATE_TEST_SUITE_P(Dags, CanonicalVsIndependent,
                         ::testing::Values(DagCase{60, 16, 3}, DagCase{150, 16, 4},
                                           DagCase{300, 24, 5}));

}  // namespace
}  // namespace statsize::ssta
