// Tests for the structural Verilog reader.

#include "netlist/verilog.h"

#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

namespace statsize::netlist {
namespace {

Circuit parse(const std::string& text) {
  std::istringstream in(text);
  return read_verilog(in);
}

TEST(Verilog, NamedConnections) {
  const Circuit c = parse(R"(
// a tiny netlist
module top (a, b, y);
  input a, b;
  output y;
  wire n1;
  NAND2 g1 (.A(a), .B(b), .Y(n1));
  INV   g2 (.A(n1), .Y(y));
endmodule
)");
  EXPECT_EQ(c.num_inputs(), 2);
  EXPECT_EQ(c.num_gates(), 2);
  EXPECT_EQ(c.outputs().size(), 1u);
  EXPECT_EQ(c.node(c.outputs().front()).name, "g2");
  EXPECT_EQ(c.cell_of(c.outputs().front()).name, "INV");
}

TEST(Verilog, PositionalConnectionsOutputFirst) {
  const Circuit c = parse(
      "module t(a,b,y); input a,b; output y; NAND2 g1(y, a, b); endmodule\n");
  EXPECT_EQ(c.num_gates(), 1);
  EXPECT_EQ(c.cell_of(c.outputs().front()).num_inputs, 2);
}

TEST(Verilog, OutOfOrderInstancesAndComments) {
  const Circuit c = parse(R"(
module t (a, y);
  input a; output y;
  wire n1; /* block
              comment */
  INV g2 (.A(n1), .Y(y));   // uses n1 before its driver appears
  INV g1 (.A(a), .Y(n1));
endmodule
)");
  EXPECT_EQ(c.num_gates(), 2);
  EXPECT_EQ(c.depth(), 2);
}

TEST(Verilog, UnknownCellFallsBackOnPinCount) {
  const Circuit c = parse(
      "module t(a,b,y); input a,b; output y; ND2X4 g1(.A(a), .B(b), .Y(y)); endmodule\n");
  EXPECT_EQ(c.cell_of(c.outputs().front()).num_inputs, 2);
}

TEST(Verilog, OutputPinAliases) {
  for (const char* pin : {"Y", "Z", "OUT", "O", "Q", "y", "out"}) {
    const std::string text = std::string("module t(a,y); input a; output y; INV g(.A(a), .") +
                             pin + "(y)); endmodule\n";
    EXPECT_NO_THROW(parse(text)) << pin;
  }
}

TEST(Verilog, Errors) {
  // Two drivers.
  EXPECT_THROW(parse("module t(a,y); input a; output y;"
                     " INV g1(.A(a), .Y(y)); INV g2(.A(a), .Y(y)); endmodule\n"),
               std::runtime_error);
  // Undriven net.
  EXPECT_THROW(parse("module t(a,y); input a; output y; INV g1(.A(ghost), .Y(y)); endmodule\n"),
               std::runtime_error);
  // Combinational cycle.
  EXPECT_THROW(parse("module t(a,y); input a; output y; wire n1;"
                     " NAND2 g1(.A(a), .B(y), .Y(n1)); INV g2(.A(n1), .Y(y)); endmodule\n"),
               std::runtime_error);
  // Mixed connection styles.
  EXPECT_THROW(parse("module t(a,y); input a; output y; INV g1(y, .A(a)); endmodule\n"),
               std::runtime_error);
  // Buses unsupported.
  EXPECT_THROW(parse("module t(a,y); input [3:0] a; output y; endmodule\n"),
               std::runtime_error);
  // Pin-count mismatch against a known cell.
  EXPECT_THROW(parse("module t(a,y); input a; output y; NAND2 g1(.A(a), .Y(y)); endmodule\n"),
               std::runtime_error);
  // No output declared.
  EXPECT_THROW(parse("module t(a); input a; INV g1(.A(a), .Y(n)); endmodule\n"),
               std::runtime_error);
}

TEST(Verilog, WorksEndToEndWithSizing) {
  // The imported circuit must be directly usable by the timing engines.
  const Circuit c = parse(R"(
module adderish (a, b, cin, s, cout);
  input a, b, cin;
  output s, cout;
  wire axb, ab, cx;
  XOR2  x1 (.A(a), .B(b), .Y(axb));
  XOR2  x2 (.A(axb), .B(cin), .Y(s));
  AND2  a1 (.A(a), .B(b), .Y(ab));
  AND2  a2 (.A(axb), .B(cin), .Y(cx));
  OR2   o1 (.A(ab), .B(cx), .Y(cout));
endmodule
)");
  EXPECT_EQ(c.num_gates(), 5);
  EXPECT_EQ(c.outputs().size(), 2u);
  EXPECT_EQ(c.depth(), 3);
}

TEST(Verilog, WriteReadRoundTrip) {
  const Circuit original = parse(
      "module t(a,b,y); input a,b; output y; wire n1;\n"
      "NAND2 g1(.A(a), .B(b), .Y(n1)); NOR2 g2(.A(n1), .B(b), .Y(y)); endmodule\n");
  std::ostringstream out;
  write_verilog(out, original, "t2");
  std::istringstream in(out.str());
  const Circuit rt = read_verilog(in);
  // The writer adds one BUF pad per primary output.
  EXPECT_EQ(rt.num_gates(), original.num_gates() + 1);
  EXPECT_EQ(rt.num_inputs(), original.num_inputs());
  EXPECT_EQ(rt.outputs().size(), original.outputs().size());
}

}  // namespace
}  // namespace statsize::netlist
