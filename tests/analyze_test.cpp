// Tests for the static-analysis subsystem (src/analyze): the diagnostics
// engine, the three analysis families (circuit / library / model), the lint
// driver with its parser error paths, and the reworked Circuit::finalize()
// that reports through the analyzer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analyze/circuit_lint.h"
#include "analyze/diagnostic.h"
#include "analyze/library_lint.h"
#include "analyze/lint.h"
#include "analyze/model_audit.h"
#include "analyze/registry.h"
#include "netlist/blif.h"
#include "netlist/generators.h"
#include "netlist/verilog.h"
#include "nlp/problem.h"

namespace {

using namespace statsize;
using analyze::Report;
using analyze::Severity;
using netlist::CellLibrary;
using netlist::Circuit;
using netlist::NodeId;

bool has_rule(const Report& report, const std::string& id) {
  for (const auto& d : report.diagnostics()) {
    if (d.id == id) return true;
  }
  return false;
}

std::string message_of(const Report& report, const std::string& id) {
  for (const auto& d : report.diagnostics()) {
    if (d.id == id) return d.locus + ": " + d.message;
  }
  return {};
}

/// inputs a,b -> NAND2 "C" -> output; plus whatever the test grafts on.
Circuit small_base(NodeId* out_a = nullptr, NodeId* out_b = nullptr, NodeId* out_c = nullptr) {
  const CellLibrary& lib = CellLibrary::standard();
  Circuit c(lib);
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  const NodeId g = c.add_gate(lib.cell_for_inputs(2), {a, b}, "C");
  c.mark_output(g, 1.0);
  if (out_a) *out_a = a;
  if (out_b) *out_b = b;
  if (out_c) *out_c = g;
  return c;
}

// ---------------------------------------------------------------------------
// Diagnostics engine
// ---------------------------------------------------------------------------

TEST(Diagnostics, ExitCodeTracksMaxSeverity) {
  Report r;
  EXPECT_EQ(r.exit_code(), 0);
  r.add("CIR007", "input 'x'", "drives no gate");  // note
  EXPECT_EQ(r.exit_code(), 0);
  r.add("CIR010", "gate 'g'", "duplicate");  // warning
  EXPECT_EQ(r.exit_code(), 2);
  r.add("CIR001", "gate 'g'", "cycle");  // error
  EXPECT_EQ(r.exit_code(), 3);
  EXPECT_EQ(r.count(Severity::kError), 1);
  EXPECT_EQ(r.summary(), "1 errors, 1 warnings, 1 notes");
}

TEST(Diagnostics, SortPutsErrorsFirst) {
  Report r;
  r.add("CIR007", "input 'x'", "note first");
  r.add("LIB001", "cell 'n'", "an error");
  r.add("CIR001", "gate 'g'", "another error");
  r.sort();
  ASSERT_EQ(r.diagnostics().size(), 3u);
  EXPECT_EQ(r.diagnostics()[0].id, "CIR001");  // errors first, then by id
  EXPECT_EQ(r.diagnostics()[1].id, "LIB001");
  EXPECT_EQ(r.diagnostics()[2].id, "CIR007");
}

TEST(Diagnostics, UnknownRuleIdBecomesError) {
  Report r;
  r.add("NOPE99", "somewhere", "msg");
  EXPECT_TRUE(r.has_errors());
}

TEST(Diagnostics, ErrorsTextListsOnlyErrors) {
  Report r;
  r.add("CIR007", "input 'x'", "a note");
  r.add("CIR001", "gate 'g'", "cycle here");
  const std::string text = r.errors_text();
  EXPECT_NE(text.find("CIR001"), std::string::npos);
  EXPECT_NE(text.find("cycle here"), std::string::npos);
  EXPECT_EQ(text.find("CIR007"), std::string::npos);
}

TEST(Diagnostics, JsonCarriesTargetSummaryAndIds) {
  Report r;
  r.add("LIB001", "cell 'bad'", "negative");
  std::ostringstream out;
  r.write_json(out, "unit-test");
  const std::string json = out.str();
  EXPECT_NE(json.find("\"target\": \"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"exit_code\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"id\": \"LIB001\""), std::string::npos);
}

TEST(Registry, CatalogIsSortedUniqueAndResolvable) {
  const auto& rules = analyze::rule_catalog();
  ASSERT_FALSE(rules.empty());
  for (std::size_t i = 1; i < rules.size(); ++i) {
    EXPECT_LT(rules[i - 1].id, rules[i].id) << "catalog must be sorted by id, no duplicates";
  }
  for (const auto& rule : rules) {
    const auto* found = analyze::find_rule(rule.id);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->id, rule.id);
  }
  EXPECT_EQ(analyze::find_rule("ZZZ999"), nullptr);
  ASSERT_NE(analyze::find_rule("CIR001"), nullptr);
  EXPECT_EQ(analyze::find_rule("CIR001")->severity, Severity::kError);
}

// ---------------------------------------------------------------------------
// Circuit structure lint
// ---------------------------------------------------------------------------

TEST(CircuitLint, CycleDiagnosticNamesTheGates) {
  NodeId a, b;
  Circuit c = small_base(&a, &b);
  const int nand2 = c.library().cell_for_inputs(2);
  const NodeId x = c.add_gate_deferred(nand2, "loopx");
  const NodeId y = c.add_gate_deferred(nand2, "loopy");
  c.set_fanin(x, 0, y);
  c.set_fanin(x, 1, a);
  c.set_fanin(y, 0, x);
  c.set_fanin(y, 1, b);

  const Report report = analyze::lint_circuit_structure(c);
  ASSERT_TRUE(has_rule(report, "CIR001"));
  const std::string msg = message_of(report, "CIR001");
  EXPECT_NE(msg.find("loopx"), std::string::npos);
  EXPECT_NE(msg.find("loopy"), std::string::npos);
  EXPECT_NE(msg.find("->"), std::string::npos);
  EXPECT_EQ(report.exit_code(), 3);
}

TEST(CircuitLint, FinalizeNamesCycleGatesInException) {
  NodeId a;
  Circuit c = small_base(&a);
  const int inv = c.library().cell_for_inputs(1);
  const NodeId x = c.add_gate_deferred(inv, "snake");
  c.set_fanin(x, 0, x);  // self-loop
  try {
    c.finalize();
    FAIL() << "finalize() must reject a cyclic circuit";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CIR001"), std::string::npos);
    EXPECT_NE(what.find("snake"), std::string::npos);
  }
}

TEST(CircuitLint, DanglingGateIsCIR006) {
  NodeId a;
  Circuit c = small_base(&a);
  c.add_gate(c.library().cell_for_inputs(1), {a}, "dangle");
  const Report report = analyze::lint_circuit_structure(c);
  EXPECT_TRUE(has_rule(report, "CIR006"));
  EXPECT_NE(message_of(report, "CIR006").find("dangle"), std::string::npos);
  EXPECT_THROW(c.finalize(), std::runtime_error);
}

TEST(CircuitLint, DeadChainSplitsIntoCIR005AndCIR006) {
  NodeId a;
  Circuit c = small_base(&a);
  const int inv = c.library().cell_for_inputs(1);
  const NodeId d1 = c.add_gate(inv, {a}, "dead_mid");
  c.add_gate(inv, {d1}, "dead_tip");
  const Report report = analyze::lint_circuit_structure(c);
  // dead_mid has a fanout (dead_tip) but no path to an output; dead_tip
  // drives nothing at all.
  EXPECT_NE(message_of(report, "CIR005").find("dead_mid"), std::string::npos);
  EXPECT_NE(message_of(report, "CIR006").find("dead_tip"), std::string::npos);
}

TEST(CircuitLint, UnconnectedPinIsCIR002) {
  Circuit c = small_base();
  const NodeId g = c.add_gate_deferred(c.library().cell_for_inputs(2), "half_wired");
  c.set_fanin(g, 0, 0);
  const Report report = analyze::lint_circuit_structure(c);
  EXPECT_TRUE(has_rule(report, "CIR002"));
  EXPECT_NE(message_of(report, "CIR002").find("half_wired"), std::string::npos);
}

TEST(CircuitLint, FloatingInputIsANote) {
  Circuit c = small_base();
  c.add_input("unused");
  const Report report = analyze::lint_circuit_structure(c);
  EXPECT_TRUE(has_rule(report, "CIR007"));
  EXPECT_FALSE(report.has_errors());
  EXPECT_EQ(report.exit_code(), 0);  // notes do not gate CI
  c.finalize();                      // and do not block finalize
  EXPECT_TRUE(c.finalized());
}

TEST(CircuitLint, NegativePadLoadIsCIR008) {
  NodeId a, g;
  Circuit c = small_base(&a, nullptr, &g);
  const NodeId h = c.add_gate(c.library().cell_for_inputs(1), {g}, "H");
  c.mark_output(h, -2.0);  // mark_output does not validate; the linter must
  const Report report = analyze::lint_circuit_structure(c);
  EXPECT_TRUE(has_rule(report, "CIR008"));
  EXPECT_TRUE(report.has_errors());
}

TEST(CircuitLint, ZeroPadLoadOnOutputGateIsANote) {
  NodeId a;
  Circuit c = small_base(&a);
  const NodeId h = c.add_gate(c.library().cell_for_inputs(1), {a}, "H");
  c.mark_output(h, 0.0);
  const Report report = analyze::lint_circuit_structure(c);
  EXPECT_TRUE(has_rule(report, "CIR009"));
  EXPECT_FALSE(report.has_errors());
}

TEST(CircuitLint, NoOutputsIsCIR004) {
  const CellLibrary& lib = CellLibrary::standard();
  Circuit c(lib);
  const NodeId a = c.add_input("a");
  c.add_gate(lib.cell_for_inputs(1), {a}, "g");
  const Report report = analyze::lint_circuit_structure(c);
  EXPECT_TRUE(has_rule(report, "CIR004"));
}

TEST(CircuitLint, DuplicateNamesWarn) {
  NodeId a, g;
  Circuit c = small_base(&a, nullptr, &g);
  const NodeId h = c.add_gate(c.library().cell_for_inputs(1), {g}, "C");  // name reused
  c.mark_output(h, 1.0);
  const Report report = analyze::lint_circuit_structure(c);
  EXPECT_TRUE(has_rule(report, "CIR010"));
  EXPECT_FALSE(report.has_errors());
  EXPECT_EQ(report.exit_code(), 2);
}

TEST(CircuitLint, DeferredConstructionYieldsValidTopoOrder) {
  // Wire C = NAND(a, b) "backwards": the gate is created before its fanins
  // exist, so id order is NOT topological and finalize must re-sort.
  const CellLibrary& lib = CellLibrary::standard();
  Circuit c(lib);
  const NodeId g = c.add_gate_deferred(lib.cell_for_inputs(2), "C");
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  c.set_fanin(g, 0, a);
  c.set_fanin(g, 1, b);
  c.mark_output(g, 1.0);
  c.finalize();

  const std::vector<NodeId>& topo = c.topo_order();
  ASSERT_EQ(topo.size(), 3u);
  std::vector<int> pos(topo.size());
  for (std::size_t i = 0; i < topo.size(); ++i) pos[static_cast<std::size_t>(topo[i])] = static_cast<int>(i);
  EXPECT_LT(pos[static_cast<std::size_t>(a)], pos[static_cast<std::size_t>(g)]);
  EXPECT_LT(pos[static_cast<std::size_t>(b)], pos[static_cast<std::size_t>(g)]);
}

TEST(CircuitLint, IdentityOrderPreservedForClassicConstruction) {
  // Fanin-before-fanout construction must keep the identity topological
  // order (run_ssta's primary-input indexing and several reports depend on
  // id-ordered traversal being equivalent).
  Circuit c = netlist::make_tree_circuit();
  const std::vector<NodeId>& topo = c.topo_order();
  for (std::size_t i = 0; i < topo.size(); ++i) {
    EXPECT_EQ(topo[i], static_cast<NodeId>(i));
  }
}

TEST(CircuitLint, CleanCircuitsStayClean) {
  Circuit tree = netlist::make_tree_circuit();
  EXPECT_TRUE(analyze::lint_circuit_structure(tree).empty());
  Circuit apex2 = netlist::make_mcnc_like("apex2");
  EXPECT_FALSE(analyze::lint_circuit_structure(apex2).has_errors());
}

// ---------------------------------------------------------------------------
// Library lint
// ---------------------------------------------------------------------------

TEST(LibraryLint, FlagsNonPhysicalCells) {
  std::vector<netlist::CellType> cells;
  cells.push_back({"NEGDELAY", 2, -0.5, 1.0, 1.0, 1.0, netlist::CellFunction::kNand});
  cells.push_back({"ZEROCIN", 1, 1.0, 1.0, 0.0, 1.0, netlist::CellFunction::kInv});
  cells.push_back({"NEGDELAY", 2, 1.0, 1.0, 1.0, 1.0, netlist::CellFunction::kNand});
  cells.push_back({"NOPINS", 0, 1.0, 1.0, 1.0, 1.0, netlist::CellFunction::kBuf});
  const Report report = analyze::lint_cells(cells);
  EXPECT_TRUE(has_rule(report, "LIB001"));  // negative t_int
  EXPECT_TRUE(has_rule(report, "LIB003"));  // zero c_in
  EXPECT_TRUE(has_rule(report, "LIB005"));  // duplicate name
  EXPECT_TRUE(has_rule(report, "LIB006"));  // zero pins
  EXPECT_TRUE(report.has_errors());
}

TEST(LibraryLint, StandardLibraryIsClean) {
  EXPECT_TRUE(analyze::lint_library(CellLibrary::standard()).empty());
}

TEST(LibraryLint, SigmaModelChecks) {
  EXPECT_TRUE(analyze::lint_sigma_model({0.25, 0.0}, 1.0).empty());
  // Negative offset: sigma < 0 at the smallest attainable delay.
  const Report neg_offset = analyze::lint_sigma_model({0.25, -10.0}, 1.0);
  EXPECT_TRUE(has_rule(neg_offset, "LIB008"));
  // Negative kappa: non-monotone warning, and sigma eventually negative.
  const Report neg_kappa = analyze::lint_sigma_model({-0.1, 1.0}, 1.0);
  EXPECT_TRUE(has_rule(neg_kappa, "LIB009"));
  EXPECT_TRUE(has_rule(neg_kappa, "LIB008"));
}

TEST(LibraryLint, SizeTableChecks) {
  EXPECT_TRUE(analyze::lint_size_table({1.0, 1.5, 2.0, 3.0}).empty());
  EXPECT_TRUE(has_rule(analyze::lint_size_table({}), "LIB010"));
  EXPECT_TRUE(has_rule(analyze::lint_size_table({0.5, 2.0}), "LIB010"));
  EXPECT_TRUE(has_rule(analyze::lint_size_table({1.0, 2.0, 2.0}), "LIB010"));
}

// ---------------------------------------------------------------------------
// Model audits
// ---------------------------------------------------------------------------

TEST(ModelAudit, BadBoundsAreMOD001) {
  // add_variable validates bounds and clamps the start, so the broken states
  // the audit defends against arise through later mutation (set_start).
  nlp::Problem p;
  p.add_variable(1.0, 3.0, 2.0, "ok");
  const int outside = p.add_variable(0.0, 1.0, 0.5, "start_outside");
  const int nonfinite = p.add_variable(0.0, 1.0, 0.5, "start_nan");
  p.set_start(outside, 5.0);
  p.set_start(nonfinite, std::nan(""));
  const Report report = analyze::audit_problem_bounds(p, "test");
  EXPECT_TRUE(report.has_errors());
  int mod001 = 0;
  for (const auto& d : report.diagnostics()) mod001 += d.id == "MOD001";
  EXPECT_EQ(mod001, 2);
  EXPECT_NE(message_of(report, "MOD001").find("start_outside"), std::string::npos);
}

TEST(ModelAudit, DegenerateSigmaModelTripsClarkCheck) {
  // With sigma identically zero every arrival is deterministic, so every
  // materialized Clark merge has theta = 0. The leaf gates' merges fold
  // (both operands are constant primary-input arrivals — no Clark element is
  // built for them), but the interior gates C, F, G merge live gate arrivals
  // and must all be flagged.
  Circuit tree = netlist::make_tree_circuit();
  const std::vector<double> unit(static_cast<std::size_t>(tree.num_nodes()), 1.0);
  const Report report = analyze::audit_clark_degeneracy(tree, {0.0, 0.0}, unit, 1e-3);
  ASSERT_TRUE(has_rule(report, "MOD002"));
  std::string loci;
  for (const auto& d : report.diagnostics()) {
    if (d.id == "MOD002") loci += d.locus + "; ";
  }
  EXPECT_NE(loci.find("'C'"), std::string::npos) << loci;
  EXPECT_NE(loci.find("'F'"), std::string::npos) << loci;
  EXPECT_NE(loci.find("'G'"), std::string::npos) << loci;
}

TEST(ModelAudit, HealthySigmaModelHasNoDegeneracy) {
  Circuit tree = netlist::make_tree_circuit();
  const std::vector<double> unit(static_cast<std::size_t>(tree.num_nodes()), 1.0);
  EXPECT_TRUE(analyze::audit_clark_degeneracy(tree, {0.25, 0.0}, unit, 1e-3).empty());
}

TEST(ModelAudit, TreeModelAuditIsCleanUnderDefaults) {
  Circuit tree = netlist::make_tree_circuit();
  const Report report = analyze::audit_model(tree, {});
  EXPECT_TRUE(report.empty()) << report.errors_text();
}

namespace bad_element {

/// f(x) = x^2 but the reported gradient is 3x — a deliberate analytic bug.
class WrongGradient final : public nlp::ElementFunction {
 public:
  int arity() const override { return 1; }
  double eval(const double* x, double* grad, double* hess) const override {
    if (grad) grad[0] = 3.0 * x[0];
    if (hess) hess[0] = 2.0;
    return x[0] * x[0];
  }
};

}  // namespace bad_element

TEST(ModelAudit, WrongAnalyticGradientIsMOD003) {
  nlp::Problem p;
  const int v = p.add_variable(1.0, 4.0, 2.0, "x");
  const auto* fn = p.own(std::make_unique<bad_element::WrongGradient>());
  nlp::FunctionGroup g;
  g.elements.push_back({fn, {v}, 1.0});
  p.set_objective(std::move(g));
  const Report report = analyze::audit_problem_derivatives(p, "bad", 2, 7u, 1e-4);
  EXPECT_TRUE(has_rule(report, "MOD003"));
}

TEST(ModelAudit, SpecInconsistenciesAreMOD004) {
  Circuit tree = netlist::make_tree_circuit();
  core::SizingSpec spec;
  spec.max_speed = 0.5;  // empty sizing box
  spec.delay_constraint = core::DelayConstraint::at_most(-1.0, 0.0);
  EXPECT_TRUE(analyze::audit_spec(spec, tree).has_errors());

  core::SizingSpec weighted;
  weighted.objective = core::Objective::min_weighted({1.0, 2.0});  // too short
  const Report report = analyze::audit_spec(weighted, tree);
  EXPECT_TRUE(has_rule(report, "MOD004"));
}

netlist::Circuit nan_cell_circuit() {
  // CellLibrary::add rejects non-positive constants but a NaN slips through
  // every `<= 0` comparison — the defect class MOD005 exists for.
  static netlist::CellLibrary lib = [] {
    netlist::CellLibrary l;
    netlist::CellType bad;
    bad.name = "INV_NAN";
    bad.num_inputs = 1;
    bad.c_in = std::numeric_limits<double>::quiet_NaN();
    bad.function = netlist::CellFunction::kInv;
    l.add(bad);
    return l;
  }();
  Circuit c(lib);
  const NodeId a = c.add_input("a");
  const NodeId g = c.add_gate(0, {a}, "g");
  c.mark_output(g, 1.0);
  return c;
}

TEST(ModelAudit, NonFiniteCellParameterIsMOD005) {
  Circuit c = nan_cell_circuit();
  const Report report = analyze::audit_view_compilability(c);
  ASSERT_TRUE(has_rule(report, "MOD005"));
  EXPECT_TRUE(report.has_errors());
  const std::string msg = message_of(report, "MOD005");
  EXPECT_NE(msg.find("INV_NAN"), std::string::npos) << msg;
  EXPECT_NE(msg.find("c_in"), std::string::npos) << msg;
}

TEST(ModelAudit, NonFiniteWireLoadIsMOD005) {
  NodeId g;
  Circuit c = small_base(nullptr, nullptr, &g);
  c.set_wire_load(g, std::numeric_limits<double>::infinity());
  const Report report = analyze::audit_view_compilability(c);
  ASSERT_TRUE(has_rule(report, "MOD005"));
  EXPECT_NE(message_of(report, "MOD005").find("'C'"), std::string::npos);
  // A healthy circuit is clean.
  Circuit ok = small_base();
  EXPECT_FALSE(analyze::audit_view_compilability(ok).has_errors());
}


// ---------------------------------------------------------------------------
// Lint driver + parser error paths
// ---------------------------------------------------------------------------

analyze::LintOptions fast_options() {
  analyze::LintOptions options;
  options.model.derivative_points = 1;
  return options;
}

TEST(LintDriver, TreeIsClean) {
  Circuit tree = netlist::make_tree_circuit();
  const Report report = analyze::lint_circuit(tree, fast_options());
  EXPECT_EQ(report.exit_code(), 0) << report.errors_text();
}

TEST(LintDriver, StructuralErrorsSuppressModelAudit) {
  NodeId a;
  Circuit c = small_base(&a);
  c.add_gate(c.library().cell_for_inputs(1), {a}, "dangle");
  const Report report = analyze::lint_circuit(c, fast_options());
  EXPECT_TRUE(has_rule(report, "CIR006"));
  EXPECT_FALSE(c.finalized());  // driver must not try to finalize broken input
  for (const auto& d : report.diagnostics()) {
    EXPECT_NE(d.id.substr(0, 3), "MOD") << "model audit must not run on broken structure";
  }
}

TEST(LintDriver, NonCompilableViewIsReportedNotThrown) {
  // lint_circuit must report MOD005 instead of dying when finalize() (which
  // compiles the TimingView) would throw on the non-finite parameter — so the
  // audit has to run before the driver's finalize step.
  Circuit c = nan_cell_circuit();
  const Report report = analyze::lint_circuit(c, fast_options());
  EXPECT_TRUE(has_rule(report, "MOD005"));
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(c.finalized());
}

TEST(BlifErrors, UndefinedSignalThrowsAndLints) {
  const std::string text =
      ".model m\n.inputs a\n.outputs y\n.names a phantom y\n11 1\n.end\n";
  {
    std::istringstream in(text);
    EXPECT_THROW(netlist::read_blif(in), std::runtime_error);
  }
  std::istringstream in(text);
  const Report report = analyze::lint_blif(in, CellLibrary::standard(), fast_options());
  ASSERT_TRUE(has_rule(report, "PAR001"));
  EXPECT_NE(message_of(report, "PAR001").find("phantom"), std::string::npos);
  EXPECT_NE(message_of(report, "PAR001").find("never defined"), std::string::npos);
  EXPECT_EQ(report.exit_code(), 3);
}

TEST(BlifErrors, DuplicateDefinitionThrowsAndLints) {
  const std::string text =
      ".model m\n.inputs a b\n.outputs y\n.names a y\n1 1\n.names b y\n1 1\n.end\n";
  {
    std::istringstream in(text);
    EXPECT_THROW(netlist::read_blif(in), std::runtime_error);
  }
  std::istringstream in(text);
  const Report report = analyze::lint_blif(in, CellLibrary::standard(), fast_options());
  ASSERT_TRUE(has_rule(report, "PAR001"));
  EXPECT_NE(message_of(report, "PAR001").find("defined twice"), std::string::npos);
}

TEST(BlifErrors, MissingArityCellThrowsAndLints) {
  const std::string text =
      ".model m\n.inputs a b c d e\n.outputs y\n.names a b c d e y\n11111 1\n.end\n";
  {
    std::istringstream in(text);
    EXPECT_THROW(netlist::read_blif(in), std::runtime_error);  // standard() tops out at 4 pins
  }
  std::istringstream in(text);
  const Report report = analyze::lint_blif(in, CellLibrary::standard(), fast_options());
  ASSERT_TRUE(has_rule(report, "PAR001"));
  EXPECT_NE(message_of(report, "PAR001").find("no library cell with 5 inputs"),
            std::string::npos);
}

TEST(BlifErrors, CycleSurfacesAsStructuralDiagnosticNotParseError) {
  // A cycle is representable in the graph, so the raw importer accepts it and
  // the structural analyzer names the gates — strictly better than the old
  // parser-level rejection.
  const std::string text =
      ".model m\n.inputs a\n.outputs y\n"
      ".names a q y\n11 1\n.names y r\n1 1\n.names r q\n1 1\n.end\n";
  {
    std::istringstream in(text);
    EXPECT_THROW(netlist::read_blif(in), std::runtime_error);
  }
  std::istringstream in(text);
  const Report report = analyze::lint_blif(in, CellLibrary::standard(), fast_options());
  EXPECT_FALSE(has_rule(report, "PAR001"));
  ASSERT_TRUE(has_rule(report, "CIR001"));
  EXPECT_NE(message_of(report, "CIR001").find("->"), std::string::npos);
}

TEST(BlifImport, OutOfOrderDefinitionsBuildAndStayClean) {
  const std::string text =
      ".model m\n.inputs a b\n.outputs y\n"
      ".names n1 b y\n11 1\n.names a b n1\n11 1\n.end\n";
  std::istringstream in(text);
  Circuit c = netlist::read_blif(in);
  EXPECT_EQ(c.num_gates(), 2);
  EXPECT_TRUE(c.finalized());
  EXPECT_TRUE(analyze::lint_circuit_structure(c).empty());
}

TEST(BlifImport, CloneWithLibrarySurvivesNonIdentityTopoOrder) {
  const std::string text =
      ".model m\n.inputs a b\n.outputs y\n"
      ".names n1 b y\n11 1\n.names a b n1\n11 1\n.end\n";
  std::istringstream in(text);
  Circuit c = netlist::read_blif(in);
  const CellLibrary scaled = netlist::scale_library_delays(c.library(), 1.5);
  Circuit clone = netlist::clone_with_library(c, scaled);
  ASSERT_EQ(clone.num_nodes(), c.num_nodes());
  for (NodeId id = 0; id < c.num_nodes(); ++id) {
    EXPECT_EQ(clone.node(id).name, c.node(id).name);
    EXPECT_EQ(clone.node(id).fanins, c.node(id).fanins);
  }
  EXPECT_EQ(clone.outputs(), c.outputs());
}

TEST(VerilogErrors, BadInputsThrowAndLint) {
  // 5 pins: unknown names with 1-4 pins fall back to a generic cell, so an
  // unresolvable instance needs an arity the standard library lacks.
  const std::string unknown_cell =
      "module top (a, y);\ninput a;\noutput y;\n"
      "BOGUS9 g1 (.A(a), .B(a), .C(a), .D(a), .E(a), .Y(y));\nendmodule\n";
  const std::string pin_mismatch =
      "module top (a, y);\ninput a;\noutput y;\nNAND2 g1 (.A(a), .Y(y));\nendmodule\n";
  const std::string two_drivers =
      "module top (a, y);\ninput a;\noutput y;\n"
      "INV g1 (.A(a), .Y(y));\nINV g2 (.A(a), .Y(y));\nendmodule\n";
  const std::string undriven =
      "module top (a, y);\ninput a;\noutput y;\nwire n;\nINV g1 (.A(n), .Y(y));\nendmodule\n";
  const struct {
    const std::string* text;
    const char* expect;
  } cases[] = {
      {&unknown_cell, "unknown cell"},
      {&pin_mismatch, "expects"},
      {&two_drivers, "two drivers"},
      {&undriven, "no driver"},
  };
  for (const auto& tc : cases) {
    {
      std::istringstream in(*tc.text);
      EXPECT_THROW(netlist::read_verilog(in), std::runtime_error) << tc.expect;
    }
    std::istringstream in(*tc.text);
    const Report report = analyze::lint_verilog(in, CellLibrary::standard(), fast_options());
    ASSERT_TRUE(has_rule(report, "PAR002")) << tc.expect;
    EXPECT_NE(message_of(report, "PAR002").find(tc.expect), std::string::npos);
    EXPECT_EQ(report.exit_code(), 3);
  }
}

TEST(LintDriver, MissingFileIsAParseDiagnosticNotACrash) {
  const Report blif = analyze::lint_file("/nonexistent/x.blif", CellLibrary::standard());
  EXPECT_TRUE(has_rule(blif, "PAR001"));
  const Report verilog = analyze::lint_file("/nonexistent/x.v", CellLibrary::standard());
  EXPECT_TRUE(has_rule(verilog, "PAR002"));
}

}  // namespace
