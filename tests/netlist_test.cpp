// Tests for the netlist substrate: cell library, circuit DAG invariants,
// generators, and BLIF round-tripping.

#include "netlist/blif.h"
#include "netlist/cell_library.h"
#include "netlist/circuit.h"
#include "netlist/generators.h"

#include <set>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

namespace statsize::netlist {
namespace {

TEST(CellLibrary, StandardHasCoreCells) {
  const CellLibrary& lib = CellLibrary::standard();
  for (const char* name : {"INV", "NAND2", "NAND3", "NAND4", "NOR2", "XOR2"}) {
    EXPECT_GE(lib.find(name), 0) << name;
  }
  EXPECT_EQ(lib.find("NAND17"), -1);
}

TEST(CellLibrary, CellForInputsPrefersNand) {
  const CellLibrary& lib = CellLibrary::standard();
  EXPECT_EQ(lib.cell(lib.cell_for_inputs(2)).name, "NAND2");
  EXPECT_EQ(lib.cell(lib.cell_for_inputs(3)).name, "NAND3");
  EXPECT_EQ(lib.cell(lib.cell_for_inputs(1)).name, "INV");
  EXPECT_EQ(lib.cell_for_inputs(9), -1);
}

TEST(CellLibrary, RejectsInvalidCells) {
  CellLibrary lib;
  EXPECT_THROW(lib.add({"", 2, 1, 1, 1, 1}), std::invalid_argument);
  EXPECT_THROW(lib.add({"X", 0, 1, 1, 1, 1}), std::invalid_argument);
  EXPECT_THROW(lib.add({"X", 2, -1, 1, 1, 1}), std::invalid_argument);
  lib.add({"X", 2, 1, 1, 1, 1});
  EXPECT_THROW(lib.add({"X", 2, 1, 1, 1, 1}), std::invalid_argument);
}

TEST(Circuit, BuildAndQueryTree) {
  const Circuit c = make_tree_circuit();
  EXPECT_EQ(c.num_gates(), 7);
  EXPECT_EQ(c.num_inputs(), 8);
  EXPECT_EQ(c.outputs().size(), 1u);
  EXPECT_EQ(c.depth(), 3);

  const CircuitStats s = compute_stats(c);
  EXPECT_EQ(s.num_gates, 7);
  EXPECT_EQ(s.depth, 3);
  EXPECT_DOUBLE_EQ(s.avg_fanin, 2.0);
}

TEST(Circuit, TopoOrderRespectsDependencies) {
  const Circuit c = make_mcnc_like("apex2");
  std::set<NodeId> seen;
  for (NodeId id : c.topo_order()) {
    for (NodeId f : c.node(id).fanins) {
      EXPECT_TRUE(seen.count(f)) << "fanin " << f << " after node " << id;
    }
    seen.insert(id);
  }
  EXPECT_EQ(static_cast<int>(seen.size()), c.num_nodes());
}

TEST(Circuit, LoadCapacitanceSumsFanoutPins) {
  const CellLibrary& lib = CellLibrary::standard();
  Circuit c(lib);
  const NodeId pi = c.add_input("a");
  const NodeId g0 = c.add_gate(lib.find("INV"), {pi}, "g0");
  const NodeId g1 = c.add_gate(lib.find("NAND2"), {pi, g0}, "g1");
  const NodeId g2 = c.add_gate(lib.find("NAND2"), {g0, g1}, "g2");
  c.set_wire_load(g0, 0.5);
  c.mark_output(g2, 2.0);
  c.finalize();

  std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  speed[static_cast<std::size_t>(g1)] = 3.0;
  speed[static_cast<std::size_t>(g2)] = 2.0;
  const double c_in_nand2 = lib.cell(lib.find("NAND2")).c_in;
  // g0 drives pin of g1 (S=3) and pin of g2 (S=2) plus wire 0.5.
  EXPECT_DOUBLE_EQ(c.load_capacitance(g0, speed), 0.5 + c_in_nand2 * 3.0 + c_in_nand2 * 2.0);
  // g2 is an output: pad load 2.0 only.
  EXPECT_DOUBLE_EQ(c.load_capacitance(g2, speed), 2.0);
}

TEST(Circuit, RejectsWrongPinCount) {
  const CellLibrary& lib = CellLibrary::standard();
  Circuit c(lib);
  const NodeId pi = c.add_input("a");
  EXPECT_THROW(c.add_gate(lib.find("NAND2"), {pi}, "bad"), std::invalid_argument);
}

TEST(Circuit, RejectsEditsAfterFinalize) {
  Circuit c = make_chain(3);
  EXPECT_THROW(c.add_input("late"), std::runtime_error);
  EXPECT_THROW(c.mark_output(0), std::runtime_error);
}

TEST(Circuit, RejectsDanglingGates) {
  const CellLibrary& lib = CellLibrary::standard();
  Circuit c(lib);
  const NodeId pi = c.add_input("a");
  const NodeId g0 = c.add_gate(lib.find("INV"), {pi}, "g0");
  c.add_gate(lib.find("INV"), {pi}, "dangling");
  c.mark_output(g0);
  EXPECT_THROW(c.finalize(), std::runtime_error);
}

TEST(Circuit, RejectsNoOutputs) {
  const CellLibrary& lib = CellLibrary::standard();
  Circuit c(lib);
  const NodeId pi = c.add_input("a");
  c.add_gate(lib.find("INV"), {pi}, "g0");
  EXPECT_THROW(c.finalize(), std::runtime_error);
}

TEST(Generators, ChainShape) {
  const Circuit c = make_chain(10);
  EXPECT_EQ(c.num_gates(), 10);
  EXPECT_EQ(c.depth(), 10);
  EXPECT_EQ(c.outputs().size(), 1u);
}

TEST(Generators, BalancedTreeShape) {
  const Circuit c = make_balanced_tree(4);
  EXPECT_EQ(c.num_gates(), 15);
  EXPECT_EQ(c.depth(), 4);
  EXPECT_EQ(c.num_inputs(), 16);
}

TEST(Generators, TreeCircuitMatchesFigure3) {
  const Circuit c = make_tree_circuit();
  // Gate G is the single output and is fed by C and F, which are fed by
  // {A,B} and {D,E} respectively.
  const NodeId g = c.outputs().front();
  EXPECT_EQ(c.node(g).name, "G");
  ASSERT_EQ(c.node(g).fanins.size(), 2u);
  const Node& gc = c.node(c.node(g).fanins[0]);
  const Node& gf = c.node(c.node(g).fanins[1]);
  EXPECT_EQ(gc.name, "C");
  EXPECT_EQ(gf.name, "F");
  EXPECT_EQ(c.node(gc.fanins[0]).name, "A");
  EXPECT_EQ(c.node(gc.fanins[1]).name, "B");
  EXPECT_EQ(c.node(gf.fanins[0]).name, "D");
  EXPECT_EQ(c.node(gf.fanins[1]).name, "E");
}

TEST(Generators, McncPresetsHavePaperCellCounts) {
  EXPECT_EQ(make_mcnc_like("apex1").num_gates(), 982);
  EXPECT_EQ(make_mcnc_like("apex2").num_gates(), 117);
  EXPECT_EQ(make_mcnc_like("k2").num_gates(), 1692);
  EXPECT_THROW(make_mcnc_like("nosuch"), std::invalid_argument);
}

TEST(Generators, RandomDagIsDeterministic) {
  RandomDagParams p;
  p.num_gates = 200;
  p.seed = 42;
  const Circuit a = make_random_dag(p);
  const Circuit b = make_random_dag(p);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (NodeId id = 0; id < a.num_nodes(); ++id) {
    EXPECT_EQ(a.node(id).cell, b.node(id).cell);
    EXPECT_EQ(a.node(id).fanins, b.node(id).fanins);
  }
}

TEST(Generators, RandomDagSeedChangesStructure) {
  RandomDagParams p;
  p.num_gates = 200;
  p.seed = 1;
  const Circuit a = make_random_dag(p);
  p.seed = 2;
  const Circuit b = make_random_dag(p);
  bool any_diff = false;
  for (NodeId id = 0; id < std::min(a.num_nodes(), b.num_nodes()) && !any_diff; ++id) {
    any_diff = a.node(id).fanins != b.node(id).fanins || a.node(id).cell != b.node(id).cell;
  }
  EXPECT_TRUE(any_diff);
}

class RandomDagSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagSweep, StructurallyValid) {
  RandomDagParams p;
  p.num_gates = 50 + 37 * GetParam();
  p.num_inputs = 8 + GetParam();
  p.depth = 5 + GetParam();
  p.seed = static_cast<std::uint64_t>(GetParam()) * 977 + 13;
  const Circuit c = make_random_dag(p);
  EXPECT_EQ(c.num_gates(), p.num_gates);
  EXPECT_GE(c.depth(), 2);
  EXPECT_LE(c.depth(), p.depth);
  EXPECT_FALSE(c.outputs().empty());
  // No gate may have duplicate fanins that came from the dedup path, and
  // every gate's pin count must match its cell.
  for (NodeId id : c.topo_order()) {
    const Node& n = c.node(id);
    if (n.kind != NodeKind::kGate) continue;
    EXPECT_EQ(static_cast<int>(n.fanins.size()), c.library().cell(n.cell).num_inputs);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomDagSweep, ::testing::Range(0, 10));

TEST(Blif, ParseSimpleNetwork) {
  const std::string text = R"(
# simple test network
.model test
.inputs a b c
.outputs y
.names a b t1
11 1
.names t1 c y
11 1
.end
)";
  std::istringstream in(text);
  const Circuit c = read_blif(in);
  EXPECT_EQ(c.num_inputs(), 3);
  EXPECT_EQ(c.num_gates(), 2);
  EXPECT_EQ(c.outputs().size(), 1u);
  EXPECT_EQ(c.node(c.outputs().front()).name, "y");
}

TEST(Blif, HandlesOutOfOrderDefinitions) {
  // t1 is used before its .names block appears.
  const std::string text =
      ".model t\n.inputs a b\n.outputs y\n.names t1 b y\n11 1\n.names a t1\n1 1\n.end\n";
  std::istringstream in(text);
  const Circuit c = read_blif(in);
  EXPECT_EQ(c.num_gates(), 2);
}

TEST(Blif, HandlesLineContinuations) {
  const std::string text =
      ".model t\n.inputs a \\\nb\n.outputs y\n.names a b \\\ny\n11 1\n.end\n";
  std::istringstream in(text);
  const Circuit c = read_blif(in);
  EXPECT_EQ(c.num_inputs(), 2);
  EXPECT_EQ(c.num_gates(), 1);
}

TEST(Blif, ConstantNodesBecomeTimeZeroSources) {
  const std::string text =
      ".model t\n.inputs a\n.outputs y\n.names one\n1\n.names a one y\n11 1\n.end\n";
  std::istringstream in(text);
  const Circuit c = read_blif(in);
  EXPECT_EQ(c.num_inputs(), 2);  // 'a' plus the constant
  EXPECT_EQ(c.num_gates(), 1);
}

TEST(Blif, RejectsCycle) {
  const std::string text =
      ".model t\n.inputs a\n.outputs y\n.names a y x\n11 1\n.names x y\n1 1\n.end\n";
  std::istringstream in(text);
  EXPECT_THROW(read_blif(in), std::runtime_error);
}

TEST(Blif, RejectsUndefinedSignal) {
  const std::string text = ".model t\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n";
  std::istringstream in(text);
  EXPECT_THROW(read_blif(in), std::runtime_error);
}

TEST(Blif, RejectsLatches) {
  const std::string text = ".model t\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n";
  std::istringstream in(text);
  EXPECT_THROW(read_blif(in), std::runtime_error);
}

TEST(Blif, RoundTripPreservesStructure) {
  const Circuit original = make_mcnc_like("apex2");
  std::ostringstream out;
  write_blif(out, original, "apex2_like");
  std::istringstream in(out.str());
  const Circuit parsed = read_blif(in);
  EXPECT_EQ(parsed.num_gates(), original.num_gates());
  EXPECT_EQ(parsed.num_inputs(), original.num_inputs());
  EXPECT_EQ(parsed.outputs().size(), original.outputs().size());
  EXPECT_EQ(parsed.depth(), original.depth());
}

}  // namespace
}  // namespace statsize::netlist
