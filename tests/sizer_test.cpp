// End-to-end sizing tests: both solution methods on the paper's tree circuit
// and on generated circuits, checking the qualitative structure the paper's
// Tables 2 and 3 report, plus cross-method agreement and yield behaviour.

#include "core/sizer.h"

#include "netlist/generators.h"
#include "ssta/monte_carlo.h"
#include "ssta/ssta.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

namespace statsize::core {
namespace {

using netlist::Circuit;
using netlist::NodeId;
using netlist::NodeKind;

SizerOptions opts(Method m) {
  SizerOptions o;
  o.method = m;
  return o;
}

/// mu target at `frac` of the way from the fastest to the slowest uniform
/// sizing (frac = 0 -> fastest achievable mean).
double tree_mid_mu(const Circuit& c, double frac) {
  SizingSpec spec;
  const ssta::DelayCalculator calc(c, spec.sigma_model);
  std::vector<double> s(static_cast<std::size_t>(c.num_nodes()), spec.max_speed);
  const double mu_min = ssta::run_ssta(calc, s).circuit_delay.mu;
  std::fill(s.begin(), s.end(), 1.0);
  const double mu_max = ssta::run_ssta(calc, s).circuit_delay.mu;
  return mu_min + frac * (mu_max - mu_min);
}

/// Speed factor of the gate with the given (single-letter) name.
double speed_of(const Circuit& c, const SizingResult& r, const std::string& name) {
  for (NodeId id : c.topo_order()) {
    if (c.node(id).kind == NodeKind::kGate && c.node(id).name == name) {
      return r.speed[static_cast<std::size_t>(id)];
    }
  }
  throw std::runtime_error("no gate " + name);
}

class SizerBothMethods : public ::testing::TestWithParam<Method> {};

TEST_P(SizerBothMethods, MinAreaUnconstrainedIsAllOnes) {
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  spec.objective = Objective::min_area();
  const SizingResult r = Sizer(c, spec).run(opts(GetParam()));
  EXPECT_TRUE(r.converged) << r.status;
  EXPECT_NEAR(r.sum_speed, 7.0, 1e-6);
}

TEST_P(SizerBothMethods, MinMeanDelayBeatsUnitSizing) {
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  spec.objective = Objective::min_delay(0.0);
  const SizingResult r = Sizer(c, spec).run(opts(GetParam()));
  EXPECT_TRUE(r.converged) << r.status;

  const ssta::DelayCalculator calc(c, spec.sigma_model);
  const std::vector<double> unit(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const double mu_unit = ssta::run_ssta(calc, unit).circuit_delay.mu;
  EXPECT_LT(r.circuit_delay.mu, 0.80 * mu_unit);  // paper sees ~27% gain
  EXPECT_GT(r.sum_speed, 7.0);                    // paid with area
}

TEST_P(SizerBothMethods, SigmaWeightTradesMeanForSpread) {
  // Table 1 pattern: going mu -> mu+3sigma gives slightly larger mu,
  // smaller sigma, smaller area.
  netlist::RandomDagParams dag;
  dag.num_gates = 60;
  dag.seed = 31;
  const Circuit c = netlist::make_random_dag(dag);
  SizingSpec spec;
  spec.objective = Objective::min_delay(0.0);
  const SizingResult r0 = Sizer(c, spec).run(opts(GetParam()));
  spec.objective = Objective::min_delay(3.0);
  const SizingResult r3 = Sizer(c, spec).run(opts(GetParam()));

  EXPECT_GE(r3.circuit_delay.mu, r0.circuit_delay.mu - 1e-4);
  EXPECT_LE(r3.circuit_delay.sigma(), r0.circuit_delay.sigma() + 1e-6);
  // And the mu+3sigma metric itself must be better (or equal) under the
  // objective that optimizes it.
  EXPECT_LE(r3.delay_metric(3.0), r0.delay_metric(3.0) + 1e-3);
}

TEST_P(SizerBothMethods, AreaMinimizationUnderDelayBound) {
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  spec.objective = Objective::min_area();
  spec.delay_constraint = DelayConstraint::at_most(tree_mid_mu(c, 0.4));
  const SizingResult r = Sizer(c, spec).run(opts(GetParam()));
  EXPECT_TRUE(r.converged) << r.status;
  EXPECT_LE(r.constraint_violation, 1e-4);
  EXPECT_NEAR(r.circuit_delay.mu, spec.delay_constraint->bound, 0.01);  // bound active
  EXPECT_LT(r.sum_speed, 21.0);
  EXPECT_GT(r.sum_speed, 7.0);
}

TEST_P(SizerBothMethods, TighterStatisticalConstraintNeedsMoreArea) {
  // Table 1 pattern: min area s.t. mu <= D needs less area than
  // s.t. mu + 3 sigma <= D.
  const Circuit c = netlist::make_mcnc_like("apex2");
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> unit(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const double mu_unit = ssta::run_ssta(calc, unit).circuit_delay.mu;
  const double bound = 0.8 * mu_unit;

  SizingSpec spec;
  spec.objective = Objective::min_area();
  spec.delay_constraint = DelayConstraint::at_most(bound, 0.0);
  const SizingResult r_mu = Sizer(c, spec).run(opts(GetParam()));
  spec.delay_constraint = DelayConstraint::at_most(bound, 3.0);
  const SizingResult r_3s = Sizer(c, spec).run(opts(GetParam()));

  EXPECT_LE(r_mu.constraint_violation, 1e-3);
  EXPECT_LE(r_3s.constraint_violation, 1e-3);
  EXPECT_GT(r_3s.sum_speed, r_mu.sum_speed);
  // The mu+3sigma-constrained circuit ends up with smaller mu and sigma.
  EXPECT_LT(r_3s.circuit_delay.mu, r_mu.circuit_delay.mu);
  EXPECT_LT(r_3s.circuit_delay.sigma(), r_mu.circuit_delay.sigma());
}

TEST_P(SizerBothMethods, SigmaRangeAtFixedMean) {
  // Table 2 pattern: at a fixed mu there is a sigma interval
  // [min sigma, max sigma], and min-area lands inside it; min-sigma needs
  // more area than min-area.
  const Circuit c = netlist::make_tree_circuit();
  const double mu_target = tree_mid_mu(c, 0.45);

  SizingSpec spec;
  spec.delay_constraint = DelayConstraint::exactly(mu_target);
  spec.objective = Objective::min_area();
  const SizingResult r_area = Sizer(c, spec).run(opts(GetParam()));
  spec.objective = Objective::min_sigma();
  const SizingResult r_min = Sizer(c, spec).run(opts(GetParam()));
  spec.objective = Objective::max_sigma();
  const SizingResult r_max = Sizer(c, spec).run(opts(GetParam()));

  for (const SizingResult* r : {&r_area, &r_min, &r_max}) {
    EXPECT_TRUE(r->converged) << r->status;
    EXPECT_NEAR(r->circuit_delay.mu, mu_target, 0.02);
  }
  EXPECT_LE(r_min.circuit_delay.sigma(), r_area.circuit_delay.sigma() + 1e-4);
  EXPECT_GE(r_max.circuit_delay.sigma(), r_area.circuit_delay.sigma() - 1e-4);
  EXPECT_GT(r_max.circuit_delay.sigma(), r_min.circuit_delay.sigma() + 1e-3);
  EXPECT_GE(r_min.sum_speed, r_area.sum_speed - 1e-4);
}

TEST_P(SizerBothMethods, SpeedFactorsRespectTreeSymmetry) {
  // Table 3 pattern: {A,B,D,E} equal, {C,F} equal, G largest (min-area and
  // min-sigma objectives treat similar gates similarly, output gates get
  // larger factors).
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  spec.objective = Objective::min_area();
  // Mid-range target, like the paper's mu = 6.5 row of Table 3.
  spec.delay_constraint = DelayConstraint::exactly(tree_mid_mu(c, 0.55));
  const SizingResult r = Sizer(c, spec).run(opts(GetParam()));
  ASSERT_TRUE(r.converged) << r.status;

  const double sa = speed_of(c, r, "A");
  const double sb = speed_of(c, r, "B");
  const double sd = speed_of(c, r, "D");
  const double se = speed_of(c, r, "E");
  const double sc = speed_of(c, r, "C");
  const double sf = speed_of(c, r, "F");
  const double sg = speed_of(c, r, "G");
  EXPECT_NEAR(sa, sb, 0.02);
  EXPECT_NEAR(sa, sd, 0.02);
  EXPECT_NEAR(sa, se, 0.02);
  EXPECT_NEAR(sc, sf, 0.02);
  EXPECT_GT(sc, sa - 0.02);  // later levels at least as large
  EXPECT_GT(sg, sc - 0.02);
  EXPECT_GT(sg, sa + 0.05);  // output gate clearly largest
}

TEST_P(SizerBothMethods, InfeasibleBoundIsReportedNotSilentlyAccepted) {
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  spec.objective = Objective::min_area();
  spec.delay_constraint = DelayConstraint::at_most(1.0);  // impossible
  const SizingResult r = Sizer(c, spec).run(opts(GetParam()));
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.constraint_violation, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Methods, SizerBothMethods,
                         ::testing::Values(Method::kFullSpace, Method::kReducedSpace),
                         [](const ::testing::TestParamInfo<Method>& info) {
                           return info.param == Method::kFullSpace ? "FullSpace"
                                                                   : "ReducedSpace";
                         });

TEST(SizerCrossMethod, FullAndReducedAgreeOnTree) {
  const Circuit c = netlist::make_tree_circuit();
  for (double k : {0.0, 1.0, 3.0}) {
    SizingSpec spec;
    spec.objective = Objective::min_delay(k);
    const SizingResult rf = Sizer(c, spec).run(opts(Method::kFullSpace));
    const SizingResult rr = Sizer(c, spec).run(opts(Method::kReducedSpace));
    ASSERT_TRUE(rf.converged);
    ASSERT_TRUE(rr.converged);
    EXPECT_NEAR(rf.delay_metric(k), rr.delay_metric(k), 2e-3) << "k=" << k;
  }
}

TEST(SizerCrossMethod, FullAndReducedAgreeOnRandomDag) {
  netlist::RandomDagParams p;
  p.num_gates = 60;
  p.seed = 5;
  const Circuit c = netlist::make_random_dag(p);
  SizingSpec spec;
  spec.objective = Objective::min_delay(3.0);
  const SizingResult rf = Sizer(c, spec).run(opts(Method::kFullSpace));
  const SizingResult rr = Sizer(c, spec).run(opts(Method::kReducedSpace));
  ASSERT_TRUE(rf.converged) << rf.status;
  EXPECT_NEAR(rf.delay_metric(3.0), rr.delay_metric(3.0),
              2e-3 * (1.0 + rf.delay_metric(3.0)));
}

TEST(SizerCrossMethod, NaryModeFindsTheSameOptimum) {
  netlist::RandomDagParams p;
  p.num_gates = 60;
  p.seed = 5;
  const Circuit c = netlist::make_random_dag(p);
  SizingSpec spec;
  spec.objective = Objective::min_delay(3.0);
  const SizingResult pairwise = Sizer(c, spec).run(opts(Method::kFullSpace));
  spec.nary_fanin_max = true;
  const SizingResult nary = Sizer(c, spec).run(opts(Method::kFullSpace));
  ASSERT_TRUE(pairwise.converged) << pairwise.status;
  ASSERT_TRUE(nary.converged) << nary.status;
  EXPECT_NEAR(pairwise.delay_metric(3.0), nary.delay_metric(3.0),
              2e-3 * (1 + pairwise.delay_metric(3.0)));
}

TEST(SizerCrossMethod, WeightedObjectiveAgreesAcrossMethods) {
  const Circuit c = netlist::make_tree_circuit();
  // Non-uniform weights: favor keeping the leaves small.
  std::vector<double> weights(static_cast<std::size_t>(c.num_nodes()), 0.0);
  for (NodeId id : c.topo_order()) {
    if (c.node(id).kind == NodeKind::kGate) {
      weights[static_cast<std::size_t>(id)] = c.node(id).name == "G" ? 0.5 : 2.0;
    }
  }
  SizingSpec spec;
  spec.objective = Objective::min_weighted(weights);
  spec.delay_constraint = DelayConstraint::at_most(tree_mid_mu(c, 0.5));

  const SizingResult rf = Sizer(c, spec).run(opts(Method::kFullSpace));
  const SizingResult rr = Sizer(c, spec).run(opts(Method::kReducedSpace));
  ASSERT_TRUE(rf.converged) << rf.status;
  ASSERT_TRUE(rr.converged) << rr.status;
  auto weighted = [&](const SizingResult& r) {
    double w = 0.0;
    for (NodeId id : c.topo_order()) {
      if (c.node(id).kind == NodeKind::kGate) {
        w += weights[static_cast<std::size_t>(id)] * r.speed[static_cast<std::size_t>(id)];
      }
    }
    return w;
  };
  EXPECT_NEAR(weighted(rf), weighted(rr), 0.02 * weighted(rr));
  // The cheap output gate gets pushed harder than the expensive leaves,
  // relative to the plain area objective.
  SizingSpec area_spec = spec;
  area_spec.objective = Objective::min_area();
  const SizingResult ra = Sizer(c, area_spec).run(opts(Method::kReducedSpace));
  double g_w = 0.0;
  double g_a = 0.0;
  for (NodeId id : c.topo_order()) {
    if (c.node(id).kind == NodeKind::kGate && c.node(id).name == "G") {
      g_w = rr.speed[static_cast<std::size_t>(id)];
      g_a = ra.speed[static_cast<std::size_t>(id)];
    }
  }
  EXPECT_GE(g_w, g_a - 0.02);
}

TEST(SizerValidation, WeightedObjectiveNeedsMatchingWeights) {
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  spec.objective = Objective::min_weighted({1.0, 2.0});  // wrong size
  EXPECT_THROW(Sizer(c, spec), std::invalid_argument);
}

TEST(SizerValidation, RejectsUnfinalizedAndBadSpecs) {
  netlist::Circuit open_circuit(netlist::CellLibrary::standard());
  open_circuit.add_input("a");
  SizingSpec spec;
  EXPECT_THROW(Sizer(open_circuit, spec), std::invalid_argument);

  const Circuit c = netlist::make_tree_circuit();
  SizingSpec bad;
  bad.max_speed = 0.5;
  EXPECT_THROW(Sizer(c, bad), std::invalid_argument);

  SizingSpec sigma_unconstrained;
  sigma_unconstrained.objective = Objective::min_sigma();
  EXPECT_THROW(Sizer(c, sigma_unconstrained), std::invalid_argument);
}

TEST(SizerYield, MuPlus3SigmaSizingMeetsDeadlineInMonteCarlo) {
  // The paper's yield claim: constraining mu+3sigma <= D should give ~99.8%
  // of circuits meeting D (under the model's independence assumption; the
  // tree has none reconverging, so Monte Carlo should agree closely).
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  spec.objective = Objective::min_area();
  // A deadline that is feasible for the mu+3sigma constraint (>= the best
  // achievable mu+3sigma) yet binding for the mean-only constraint (< the
  // slowest sizing's mean), so both runs below are constrained.
  const ssta::DelayCalculator range_calc(c, spec.sigma_model);
  std::vector<double> s3(static_cast<std::size_t>(c.num_nodes()), spec.max_speed);
  const double m3_min = ssta::run_ssta(range_calc, s3).circuit_delay.quantile_offset(3.0);
  std::fill(s3.begin(), s3.end(), 1.0);
  const double mu_max = ssta::run_ssta(range_calc, s3).circuit_delay.mu;
  ASSERT_LT(m3_min, mu_max);
  const double deadline = 0.5 * (m3_min + mu_max);
  spec.delay_constraint = DelayConstraint::at_most(deadline, 3.0);
  const SizingResult r = Sizer(c, spec).run(opts(Method::kFullSpace));
  ASSERT_TRUE(r.converged) << r.status;

  const ssta::DelayCalculator calc(c, spec.sigma_model);
  ssta::MonteCarloOptions mc;
  mc.num_samples = 20000;
  mc.seed = 99;
  const ssta::MonteCarloResult sim =
      ssta::run_monte_carlo(c, calc.all_delays(r.speed), mc);
  EXPECT_GT(sim.yield(deadline), 0.990);

  // Whereas constraining only the mean leaves yield near 50%.
  SizingSpec mean_only = spec;
  mean_only.delay_constraint = DelayConstraint::at_most(deadline, 0.0);
  const SizingResult r0 = Sizer(c, mean_only).run(opts(Method::kFullSpace));
  ASSERT_TRUE(r0.converged);
  const ssta::MonteCarloResult sim0 =
      ssta::run_monte_carlo(c, calc.all_delays(r0.speed), mc);
  EXPECT_LT(sim0.yield(deadline), 0.65);
  EXPECT_GT(sim0.yield(deadline), 0.35);
}

}  // namespace
}  // namespace statsize::core
