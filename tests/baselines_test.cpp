// Tests for the optimization baselines and post-processing: TILOS-style
// greedy sizing and discrete-grid legalization.

#include "core/discrete.h"
#include "core/greedy.h"

#include "core/sizer.h"
#include "netlist/generators.h"
#include "ssta/ssta.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace statsize::core {
namespace {

using netlist::Circuit;
using netlist::NodeId;
using netlist::NodeKind;

double metric_at(const Circuit& c, const SizingSpec& spec, const std::vector<double>& speed,
                 double k) {
  const ssta::DelayCalculator calc(c, spec.sigma_model);
  return ssta::run_ssta(calc, speed).circuit_delay.quantile_offset(k);
}

// ---------------------------------------------------------------------------
// Greedy baseline.
// ---------------------------------------------------------------------------

TEST(Greedy, MeetsAchievableTargetOnTree) {
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  const ssta::DelayCalculator calc(c, spec.sigma_model);
  std::vector<double> s(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const double hi = ssta::run_ssta(calc, s).circuit_delay.mu;
  std::fill(s.begin(), s.end(), spec.max_speed);
  const double lo = ssta::run_ssta(calc, s).circuit_delay.mu;
  const double target = 0.5 * (lo + hi);

  const GreedyResult r = greedy_size(c, spec, target, 0.0);
  EXPECT_TRUE(r.met_target);
  EXPECT_LE(r.delay_metric, target + 1e-9);
  EXPECT_NEAR(metric_at(c, spec, r.speed, 0.0), r.delay_metric, 1e-9);
  EXPECT_GT(r.sum_speed, 7.0);
  EXPECT_GT(r.rounds, 0);
}

TEST(Greedy, ReportsFailureOnImpossibleTarget) {
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  const GreedyResult r = greedy_size(c, spec, 1.0, 0.0);
  EXPECT_FALSE(r.met_target);
  // All helpful gates maxed out: close to the all-max sizing.
  EXPECT_GT(r.sum_speed, 0.9 * 7.0 * spec.max_speed);
}

TEST(Greedy, NlpBeatsOrMatchesGreedyArea) {
  // The paper's exact method must use no more area than the heuristic at the
  // same delay target (this is the point of exactness).
  const Circuit c = netlist::make_mcnc_like("apex2");
  SizingSpec spec;
  const ssta::DelayCalculator calc(c, spec.sigma_model);
  std::vector<double> s(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const double hi = ssta::run_ssta(calc, s).circuit_delay.mu;
  std::fill(s.begin(), s.end(), spec.max_speed);
  const double lo = ssta::run_ssta(calc, s).circuit_delay.mu;
  const double target = lo + 0.4 * (hi - lo);

  const GreedyResult greedy = greedy_size(c, spec, target, 0.0);
  ASSERT_TRUE(greedy.met_target);

  spec.objective = Objective::min_area();
  spec.delay_constraint = DelayConstraint::at_most(target);
  SizerOptions opt;
  opt.method = Method::kReducedSpace;
  const SizingResult nlp = Sizer(c, spec).run(opt);
  ASSERT_TRUE(nlp.converged) << nlp.status;
  EXPECT_LE(nlp.sum_speed, greedy.sum_speed * 1.005);
}

TEST(Greedy, SigmaWeightedTargetWorksToo) {
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  const ssta::DelayCalculator calc(c, spec.sigma_model);
  std::vector<double> s(static_cast<std::size_t>(c.num_nodes()), spec.max_speed);
  const double lo3 = ssta::run_ssta(calc, s).circuit_delay.quantile_offset(3.0);
  std::fill(s.begin(), s.end(), 1.0);
  const double hi3 = ssta::run_ssta(calc, s).circuit_delay.quantile_offset(3.0);
  const double target = 0.5 * (lo3 + hi3);
  const GreedyResult r = greedy_size(c, spec, target, 3.0);
  EXPECT_TRUE(r.met_target);
  EXPECT_NEAR(metric_at(c, spec, r.speed, 3.0), r.delay_metric, 1e-9);
}

// ---------------------------------------------------------------------------
// Discrete legalization.
// ---------------------------------------------------------------------------

TEST(SizeGridTest, GeometricGridShape) {
  const SizeGrid g = SizeGrid::geometric(3.0, 5);
  ASSERT_EQ(g.sizes.size(), 5u);
  EXPECT_DOUBLE_EQ(g.sizes.front(), 1.0);
  EXPECT_DOUBLE_EQ(g.sizes.back(), 3.0);
  for (std::size_t i = 1; i < g.sizes.size(); ++i) {
    EXPECT_NEAR(g.sizes[i] / g.sizes[i - 1], std::pow(3.0, 0.25), 1e-12);
  }
  EXPECT_THROW(SizeGrid::geometric(3.0, 1), std::invalid_argument);
  EXPECT_THROW(SizeGrid::geometric(0.5, 4), std::invalid_argument);
}

TEST(SizeGridTest, SnapRounding) {
  const SizeGrid g{{1.0, 1.5, 2.0, 3.0}};
  EXPECT_DOUBLE_EQ(g.snap(1.2, false), 1.0);   // nearest
  EXPECT_DOUBLE_EQ(g.snap(1.4, false), 1.5);
  EXPECT_DOUBLE_EQ(g.snap(1.2, true), 1.5);    // conservative up
  EXPECT_DOUBLE_EQ(g.snap(2.0, true), 2.0);    // exact points stay
  EXPECT_DOUBLE_EQ(g.snap(0.5, false), 1.0);   // clamped
  EXPECT_DOUBLE_EQ(g.snap(9.0, true), 3.0);
}

TEST(Legalize, UnconstrainedSnapsAndTrims) {
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  std::vector<double> cont(static_cast<std::size_t>(c.num_nodes()), 1.37);
  const SizeGrid grid = SizeGrid::geometric(3.0, 9);
  const DiscreteResult r = legalize_sizing(c, spec, cont, grid,
                                           std::numeric_limits<double>::infinity(), 0.0);
  EXPECT_TRUE(r.feasible);
  for (NodeId id : c.topo_order()) {
    if (c.node(id).kind != NodeKind::kGate) continue;
    const double s = r.speed[static_cast<std::size_t>(id)];
    bool on_grid = false;
    for (double g : grid.sizes) on_grid = on_grid || std::abs(g - s) < 1e-12;
    EXPECT_TRUE(on_grid) << s;
  }
}

TEST(Legalize, PreservesFeasibilityOfContinuousOptimum) {
  const Circuit c = netlist::make_mcnc_like("apex2");
  SizingSpec spec;
  spec.objective = Objective::min_area();
  const ssta::DelayCalculator calc(c, spec.sigma_model);
  std::vector<double> s(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const double hi = ssta::run_ssta(calc, s).circuit_delay.mu;
  std::fill(s.begin(), s.end(), spec.max_speed);
  const double lo = ssta::run_ssta(calc, s).circuit_delay.mu;
  const double target = lo + 0.45 * (hi - lo);
  spec.delay_constraint = DelayConstraint::at_most(target);

  SizerOptions opt;
  opt.method = Method::kReducedSpace;
  const SizingResult cont = Sizer(c, spec).run(opt);
  ASSERT_TRUE(cont.converged);

  for (int steps : {5, 9, 17}) {
    const SizeGrid grid = SizeGrid::geometric(spec.max_speed, steps);
    const DiscreteResult d = legalize_sizing(c, spec, cont.speed, grid, target, 0.0);
    EXPECT_TRUE(d.feasible) << steps << " steps";
    EXPECT_LE(d.delay_metric, target + 1e-9) << steps;
    // Finer grids must not cost more area (monotone legalization gap).
    EXPECT_GE(d.sum_speed, cont.sum_speed - 1e-6) << steps;
  }

  // The coarse-grid area exceeds the fine-grid area.
  const DiscreteResult coarse =
      legalize_sizing(c, spec, cont.speed, SizeGrid::geometric(spec.max_speed, 4), target, 0.0);
  const DiscreteResult fine =
      legalize_sizing(c, spec, cont.speed, SizeGrid::geometric(spec.max_speed, 33), target, 0.0);
  EXPECT_TRUE(coarse.feasible);
  EXPECT_GE(coarse.sum_speed, fine.sum_speed - 1e-9);
}

}  // namespace
}  // namespace statsize::core
