// Tests for the command-line argument parser used by the statsize tool.

#include "util/args.h"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace statsize::util {
namespace {

ArgParser make_parser() {
  ArgParser p("test tool");
  p.add_string("name", "a string", "default");
  p.add_string("required-name", "a string without default");
  p.add_double("ratio", "a double", 1.5);
  p.add_int("count", "an int", 7);
  p.add_flag("verbose", "a flag");
  return p;
}

bool parse(ArgParser& p, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, DefaultsApplyWhenUnset) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_EQ(p.get_string("name"), "default");
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 1.5);
  EXPECT_EQ(p.get_int("count"), 7);
  EXPECT_FALSE(p.get_flag("verbose"));
  EXPECT_FALSE(p.has("required-name"));
}

TEST(ArgParser, SpaceAndEqualsFormsBothWork) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--name", "alpha", "--ratio=2.25", "--count", "42", "--verbose"}));
  EXPECT_EQ(p.get_string("name"), "alpha");
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 2.25);
  EXPECT_EQ(p.get_int("count"), 42);
  EXPECT_TRUE(p.get_flag("verbose"));
}

TEST(ArgParser, MissingRequiredValueThrowsOnAccess) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_THROW(p.get_string("required-name"), std::invalid_argument);
}

TEST(ArgParser, RejectsUnknownFlag) {
  ArgParser p = make_parser();
  EXPECT_THROW(parse(p, {"--nope", "1"}), std::invalid_argument);
}

TEST(ArgParser, RejectsBadNumbers) {
  {
    ArgParser p = make_parser();
    EXPECT_THROW(parse(p, {"--ratio", "abc"}), std::invalid_argument);
  }
  {
    ArgParser p = make_parser();
    EXPECT_THROW(parse(p, {"--count", "3.5"}), std::invalid_argument);
  }
}

// The diagnostic must name the flag, say what was expected, and quote the
// offending value — "bad value" on a 15-flag tool is unactionable.
TEST(ArgParser, NumericDiagnosticsNameFlagAndExpectation) {
  auto message_of = [](std::vector<const char*> argv) {
    ArgParser p = make_parser();
    try {
      argv.insert(argv.begin(), "prog");
      p.parse(static_cast<int>(argv.size()), argv.data());
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  EXPECT_EQ(message_of({"--count", "abc"}), "--count: expected integer, got 'abc'");
  EXPECT_EQ(message_of({"--count", "3.5"}), "--count: expected integer, got '3.5'");
  EXPECT_EQ(message_of({"--count", "12x"}), "--count: expected integer, got '12x'");
  EXPECT_EQ(message_of({"--count", ""}), "--count: expected integer, got ''");
  EXPECT_EQ(message_of({"--ratio", "fast"}), "--ratio: expected number, got 'fast'");
  EXPECT_EQ(message_of({"--ratio=1.5ghz"}), "--ratio: expected number, got '1.5ghz'");
}

TEST(ArgParser, OutOfRangeNumbersAreNamedNotMisparsed) {
  auto message_of = [](std::vector<const char*> argv) {
    ArgParser p = make_parser();
    try {
      argv.insert(argv.begin(), "prog");
      p.parse(static_cast<int>(argv.size()), argv.data());
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  EXPECT_EQ(message_of({"--count", "99999999999999999999"}),
            "--count: value '99999999999999999999' out of range for integer");
  EXPECT_EQ(message_of({"--ratio", "1e99999"}),
            "--ratio: value '1e99999' out of range for a double");
}

TEST(ArgParser, NumericValidationStillAcceptsEdgeForms) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--count", "-3", "--ratio", "-2.5e-3"}));
  EXPECT_EQ(p.get_int("count"), -3);
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), -2.5e-3);
}

TEST(ArgParser, RejectsValueOnFlagAndPositional) {
  {
    ArgParser p = make_parser();
    EXPECT_THROW(parse(p, {"--verbose=1"}), std::invalid_argument);
  }
  {
    ArgParser p = make_parser();
    EXPECT_THROW(parse(p, {"loose"}), std::invalid_argument);
  }
}

TEST(ArgParser, MissingTrailingValue) {
  ArgParser p = make_parser();
  EXPECT_THROW(parse(p, {"--name"}), std::invalid_argument);
}

TEST(ArgParser, HelpReturnsFalseAndPrintsEveryFlag) {
  ArgParser p = make_parser();
  EXPECT_FALSE(parse(p, {"--help"}));
  const std::string usage = p.usage();
  for (const char* name : {"--name", "--ratio", "--count", "--verbose", "--help"}) {
    EXPECT_NE(usage.find(name), std::string::npos) << name;
  }
  EXPECT_NE(usage.find("default: 7"), std::string::npos);
}

TEST(ArgParser, TypeMismatchIsAProgrammerError) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--count", "3"}));
  EXPECT_THROW(p.get_string("count"), std::logic_error);
  EXPECT_THROW(p.get_double("verbose"), std::logic_error);
  EXPECT_THROW(p.get_int("never-registered"), std::logic_error);
}

TEST(ArgParser, DuplicateRegistrationThrows) {
  ArgParser p("x");
  p.add_flag("a", "first");
  EXPECT_THROW(p.add_flag("a", "again"), std::logic_error);
  EXPECT_THROW(p.add_int("a", "again", 1), std::logic_error);
}

// Multi-input tools (`statsize lint a.blif b.v`) opt into bare arguments;
// everyone else keeps them as hard errors (see RejectsValueOnFlagAndPositional).
TEST(ArgParser, PositionalsAreCollectedInOrderWhenAllowed) {
  ArgParser p = make_parser();
  p.allow_positionals("input files");
  ASSERT_TRUE(parse(p, {"a.blif", "--count", "3", "b.v", "c.blif"}));
  EXPECT_EQ(p.positionals(), (std::vector<std::string>{"a.blif", "b.v", "c.blif"}));
  EXPECT_EQ(p.get_int("count"), 3);  // flags still parse in between
  EXPECT_NE(p.usage().find("input files"), std::string::npos);
}

TEST(ArgParser, PositionalsStayEmptyAndRejectedByDefault) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--count", "3"}));
  EXPECT_TRUE(p.positionals().empty());
}

TEST(ArgParser, LastValueWins) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--count", "1", "--count", "2"}));
  EXPECT_EQ(p.get_int("count"), 2);
}

}  // namespace
}  // namespace statsize::util
