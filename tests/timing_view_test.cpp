// Tests for netlist::TimingView — the flat CSR compilation of a finalized
// Circuit that every hot sweep traverses (DESIGN.md §8).
//
// The contract under test is structural *and* numeric: the view's edge
// arrays, orders, and precomputed constants must mirror the Node path
// exactly (EXPECT_EQ on ids and on copied doubles, no tolerances), the
// compiled load_capacitance must be bit-identical to the historical Node
// walk, and compilation must reject non-finalized circuits and non-finite
// delay-model constants (the defect `statsize lint` flags as MOD005).

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "netlist/cell_library.h"
#include "netlist/circuit.h"
#include "netlist/generators.h"
#include "netlist/timing_view.h"

namespace {

using namespace statsize;
using netlist::CellLibrary;
using netlist::CellType;
using netlist::Circuit;
using netlist::NodeId;
using netlist::NodeKind;
using netlist::TimingView;

Circuit view_test_circuit(std::uint64_t seed, int gates = 120) {
  netlist::RandomDagParams p;
  p.num_gates = gates;
  p.num_inputs = 14;
  p.seed = seed;
  return make_random_dag(p);
}

TEST(TimingView, PackedArraysMirrorTheNodes) {
  const Circuit c = view_test_circuit(11);
  const TimingView& v = c.view();
  ASSERT_EQ(v.num_nodes(), c.num_nodes());
  EXPECT_EQ(v.num_gates(), c.num_gates());
  EXPECT_EQ(v.num_inputs(), c.num_inputs());
  for (NodeId id = 0; id < c.num_nodes(); ++id) {
    const netlist::Node& n = c.node(id);
    EXPECT_EQ(v.kind(id), n.kind);
    EXPECT_EQ(v.is_gate(id), n.kind == NodeKind::kGate);
    EXPECT_EQ(v.is_output(id), n.is_output);
    EXPECT_EQ(v.level(id), c.node_level(id));
    EXPECT_EQ(v.static_load(id), n.wire_load + (n.is_output ? n.pad_load : 0.0));
    if (n.kind == NodeKind::kGate) {
      const CellType& cell = c.library().cell(n.cell);
      EXPECT_EQ(v.cell(id), n.cell);
      EXPECT_EQ(v.function(id), cell.function);
      EXPECT_EQ(v.t_int(id), cell.t_int);
      EXPECT_EQ(v.drive_c(id), cell.c);
      EXPECT_EQ(v.c_in(id), cell.c_in);
      EXPECT_EQ(v.area(id), cell.area);
    } else {
      EXPECT_EQ(v.cell(id), -1);
    }
  }
}

TEST(TimingView, CsrEdgesPreserveNodeListOrder) {
  const Circuit c = view_test_circuit(12);
  const TimingView& v = c.view();
  for (NodeId id = 0; id < c.num_nodes(); ++id) {
    const netlist::Node& n = c.node(id);
    const netlist::NodeSpan fi = v.fanins(id);
    ASSERT_EQ(fi.size(), n.fanins.size());
    for (std::size_t k = 0; k < fi.size(); ++k) EXPECT_EQ(fi[k], n.fanins[k]);
    const netlist::NodeSpan fo = v.fanouts(id);
    const double* fo_cin = v.fanout_cin(id);
    ASSERT_EQ(fo.size(), n.fanouts.size());
    for (std::size_t k = 0; k < fo.size(); ++k) {
      EXPECT_EQ(fo[k], n.fanouts[k]);
      // The precomputed edge capacitance is a copy of the sink cell's c_in.
      EXPECT_EQ(fo_cin[k], c.library().cell(c.node(fo[k]).cell).c_in);
    }
  }
}

TEST(TimingView, TraversalViewsMatchCircuitOrders) {
  const Circuit c = view_test_circuit(13);
  const TimingView& v = c.view();
  EXPECT_EQ(v.topo_order(), c.topo_order());
  EXPECT_EQ(v.outputs(), c.outputs());

  std::vector<NodeId> gate_walk;
  for (NodeId id : c.topo_order()) {
    if (c.node(id).kind == NodeKind::kGate) gate_walk.push_back(id);
  }
  EXPECT_EQ(v.gates_in_topo_order(), gate_walk);

  const auto& levels = c.gate_levels();
  ASSERT_EQ(v.num_levels(), static_cast<int>(levels.size()));
  for (int l = 0; l < v.num_levels(); ++l) {
    const netlist::NodeSpan lvl = v.level_gates(l);
    ASSERT_EQ(lvl.size(), levels[static_cast<std::size_t>(l)].size());
    for (std::size_t k = 0; k < lvl.size(); ++k) {
      EXPECT_EQ(lvl[k], levels[static_cast<std::size_t>(l)][k]);
    }
  }
}

TEST(TimingView, LoadCapacitanceIsBitIdenticalToTheNodeWalk) {
  const Circuit c = view_test_circuit(14);
  const TimingView& v = c.view();
  std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()));
  for (std::size_t i = 0; i < speed.size(); ++i) {
    speed[i] = 1.0 + 0.37 * static_cast<double>(i % 7);  // uneven, deterministic
  }
  for (NodeId id = 0; id < c.num_nodes(); ++id) {
    const netlist::Node& n = c.node(id);
    // The historical Node walk: static load plus sum of sink c_in * S.
    double ref = n.wire_load + (n.is_output ? n.pad_load : 0.0);
    for (NodeId fo : n.fanouts) {
      ref += c.library().cell(c.node(fo).cell).c_in * speed[static_cast<std::size_t>(fo)];
    }
    EXPECT_EQ(v.load_capacitance(id, speed.data()), ref) << "node " << id;
    EXPECT_EQ(c.load_capacitance(id, speed), ref) << "node " << id;
  }
}

TEST(TimingView, RequiresAFinalizedCircuit) {
  const CellLibrary& lib = CellLibrary::standard();
  Circuit c(lib);
  const NodeId a = c.add_input("a");
  const NodeId g = c.add_gate(lib.find("INV"), {a}, "g");
  c.mark_output(g, 1.0);
  EXPECT_THROW(TimingView v(c), std::logic_error);
  EXPECT_THROW(c.view(), std::runtime_error);
  c.finalize();
  EXPECT_NO_THROW(c.view());
}

TEST(TimingView, NonFiniteCellParameterFailsFinalizeAndRollsBack) {
  // CellLibrary::add rejects non-positive constants, but NaN slips through
  // every `<= 0` comparison — exactly the defect MOD005 lints for. The view
  // compilation is the enforcement backstop: finalize() must throw a named
  // invalid_argument and leave the circuit un-finalized (rollback), so a
  // caller cannot observe a half-built view.
  CellLibrary lib;
  CellType bad;
  bad.name = "INV_NAN";
  bad.num_inputs = 1;
  bad.c_in = std::numeric_limits<double>::quiet_NaN();
  bad.function = netlist::CellFunction::kInv;
  const int bad_id = lib.add(bad);
  Circuit c(lib);
  const NodeId a = c.add_input("a");
  const NodeId g = c.add_gate(bad_id, {a}, "g");
  c.mark_output(g, 1.0);
  try {
    c.finalize();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("INV_NAN"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("c_in"), std::string::npos) << e.what();
  }
  EXPECT_FALSE(c.finalized());
}

TEST(TimingView, NonFiniteWireLoadFailsFinalizeAndRollsBack) {
  const CellLibrary& lib = CellLibrary::standard();
  Circuit c(lib);
  const NodeId a = c.add_input("a");
  const NodeId g = c.add_gate(lib.find("INV"), {a}, "g");
  c.mark_output(g, 1.0);
  c.set_wire_load(g, std::numeric_limits<double>::quiet_NaN());
  try {
    c.finalize();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'g'"), std::string::npos) << e.what();
  }
  EXPECT_FALSE(c.finalized());
  // The defect is repairable: fixing the load makes finalize() succeed.
  c.set_wire_load(g, 0.5);
  EXPECT_NO_THROW(c.finalize());
  EXPECT_EQ(c.view().static_load(g), 0.5 + 1.0);
}

}  // namespace
