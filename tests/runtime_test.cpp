// Tests for the parallel execution runtime (src/runtime/): thread-pool
// lifecycle, exception propagation, nested submission, the levelized
// scheduler's finalization contract, and — the load-bearing property — that
// SSTA, Monte Carlo and NLP evaluation produce bit-identical results at any
// thread count (serial path, --jobs 1, --jobs N).

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/full_space.h"
#include "core/reduced_space.h"
#include "netlist/generators.h"
#include "nlp/auglag.h"
#include "nlp/problem.h"
#include "runtime/level_schedule.h"
#include "runtime/runtime.h"
#include "runtime/scatter_plan.h"
#include "runtime/thread_pool.h"
#include "ssta/delay_model.h"
#include "ssta/monte_carlo.h"
#include "ssta/ssta.h"

namespace {

using namespace statsize;

/// Restores the global thread setting on scope exit so tests do not leak
/// their --jobs override into each other.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(runtime::threads()) {}
  ~ThreadGuard() { runtime::set_threads(saved_); }

 private:
  int saved_;
};

/// Returns the serial-cutoff state to env/auto resolution on scope exit so
/// tests that install explicit cutoffs do not leak them into each other.
class CutoffGuard {
 public:
  CutoffGuard() = default;
  ~CutoffGuard() { runtime::reset_level_serial_cutoff(); }
};

netlist::Circuit medium_dag(int gates = 400) {
  netlist::RandomDagParams p;
  p.num_gates = gates;
  p.num_inputs = 24;
  p.depth = 12;
  p.seed = 7;
  return netlist::make_random_dag(p);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, StartStopRepeatedly) {
  for (int threads : {1, 2, 4}) {
    for (int round = 0; round < 3; ++round) {
      runtime::ThreadPool pool(threads);
      EXPECT_EQ(pool.num_threads(), threads);
      std::atomic<int> ran{0};
      for (int i = 0; i < 16; ++i) {
        pool.submit([&ran] { ran.fetch_add(1); });
      }
      // parallel_for is a full barrier over its own work; drain the async
      // submissions by destroying the pool below (joins workers) — but the
      // tasks must have been queued without deadlock either way.
      pool.parallel_for(64, 8, [](std::size_t, std::size_t) {});
      (void)ran;
    }
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  runtime::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1013);
  pool.parallel_for(hits.size(), 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  runtime::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(1000, 8,
                                 [](std::size_t b, std::size_t) {
                                   if (b >= 500) throw std::runtime_error("chunk failed");
                                 }),
               std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<int> count{0};
  pool.parallel_for(100, 8, [&](std::size_t b, std::size_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  runtime::ThreadPool pool(4);
  std::atomic<long> total{0};
  pool.parallel_for(8, 1, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t o = ob; o < oe; ++o) {
      pool.parallel_for(64, 4, [&](std::size_t b, std::size_t e) {
        total.fetch_add(static_cast<long>(e - b));
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 64);
}

TEST(ThreadPool, SubmitBurstWakesEveryWorker) {
  // Wake-reliability stress at 2x hardware oversubscription: every burst of
  // submits must be fully drained even when all workers were asleep when the
  // burst arrived (the old single-notify_one wake could strand N-1 tasks
  // behind one worker). Rounds with an idle gap in between push the workers
  // through the spin window into the blocking wait before the next burst.
  const int threads = 2 * runtime::hardware_threads() + 2;
  runtime::ThreadPool pool(threads);
  for (int round = 0; round < 10; ++round) {
    const int burst = 2 * threads;
    std::atomic<int> done{0};
    for (int i = 0; i < burst; ++i) {
      pool.submit([&done, &pool] {
        // Nested parallel_for from a pool worker: must run inline, not
        // deadlock on the region machinery.
        pool.parallel_for(64, 8, [](std::size_t, std::size_t) {});
        // seq_cst: the observing spin-load below must happen-before the next
        // round's re-construction of `done` at the same stack slot.
        done.fetch_add(1);
      });
    }
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (done.load() < burst && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    ASSERT_EQ(done.load(), burst) << "lost wakeup: burst not drained in round " << round;
  }
}

TEST(ThreadPool, SubmitInterleavedWithParallelForDrainsBoth) {
  runtime::ThreadPool pool(4);
  std::atomic<int> tasks_run{0};
  std::atomic<long> iters{0};
  for (int round = 0; round < 50; ++round) {
    pool.submit([&tasks_run] { tasks_run.fetch_add(1, std::memory_order_relaxed); });
    pool.parallel_for(128, 8, [&](std::size_t b, std::size_t e) {
      iters.fetch_add(static_cast<long>(e - b), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(iters.load(), 50L * 128L);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (tasks_run.load() < 50 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(tasks_run.load(), 50);
}

TEST(Runtime, SetThreadsClampsAndSticks) {
  ThreadGuard guard;
  runtime::set_threads(0);
  EXPECT_EQ(runtime::threads(), 1);
  runtime::set_threads(3);
  EXPECT_EQ(runtime::threads(), 3);
  EXPECT_EQ(runtime::global_pool().num_threads(), 3);
  runtime::set_threads(runtime::kMaxJobs + 50);
  EXPECT_EQ(runtime::threads(), runtime::kMaxJobs);
}

// STATSIZE_JOBS validation (all env resolution routes through
// resolve_jobs_value): a malformed value must fall back to hardware
// concurrency with a warning that names the value and the reason — never UB,
// never a 0-thread pool.
TEST(Runtime, JobsEnvValidValuesParse) {
  EXPECT_EQ(runtime::resolve_jobs_value("1", 8), 1);
  EXPECT_EQ(runtime::resolve_jobs_value("16", 8), 16);
  EXPECT_EQ(runtime::resolve_jobs_value("1024", 8), runtime::kMaxJobs);
  std::string warning = "unset";
  EXPECT_EQ(runtime::resolve_jobs_value("4", 8, &warning), 4);
  EXPECT_TRUE(warning.empty());
}

TEST(Runtime, JobsEnvMalformedValuesFallBackWithNamedWarning) {
  struct Case {
    const char* value;
    const char* why_fragment;
  };
  const Case cases[] = {
      {"abc", "expected an integer"},
      {"4x", "expected an integer"},
      {"3.5", "expected an integer"},
      {"", "empty value"},
      {"0", ">= 1"},
      {"-2", ">= 1"},
      {"99999999999999999999", "maximum"},
      {"2000000000", "maximum"},
  };
  for (const Case& c : cases) {
    std::string warning;
    EXPECT_EQ(runtime::resolve_jobs_value(c.value, 8, &warning), 8) << c.value;
    EXPECT_NE(warning.find("STATSIZE_JOBS"), std::string::npos) << c.value;
    EXPECT_NE(warning.find(c.why_fragment), std::string::npos)
        << "'" << c.value << "' -> " << warning;
    if (c.value[0] != '\0') {
      EXPECT_NE(warning.find(c.value), std::string::npos) << warning;
    }
  }
  EXPECT_EQ(runtime::resolve_jobs_value(nullptr, 8), 8);
}

TEST(Runtime, JobsEnvFallbackIsAlwaysPositive) {
  // Whatever garbage arrives, the resolved count can never build a 0-thread
  // pool: the fallback itself is the hardware count (>= 1).
  const int resolved = runtime::resolve_jobs_value("not-a-number", runtime::hardware_threads());
  EXPECT_GE(resolved, 1);
  EXPECT_LE(resolved, runtime::kMaxJobs);
}

// ---------------------------------------------------------------------------
// Serial-cutoff resolution (the granularity advisor's live counterpart)
// ---------------------------------------------------------------------------

TEST(Runtime, SerialCutoffAutoFollowsThreadCount) {
  ThreadGuard guard;
  CutoffGuard cutoff_guard;
  ::unsetenv("STATSIZE_SERIAL_CUTOFF");
  runtime::reset_level_serial_cutoff();

  runtime::set_threads(4);
  EXPECT_EQ(runtime::level_serial_cutoff_source(), runtime::SerialCutoffSource::kAuto);
  runtime::DispatchCostModel m4;
  m4.threads = 4;
  EXPECT_EQ(runtime::level_serial_cutoff(), runtime::compute_serial_cutoff(m4));

  // The crossover is a function of the thread count: set_threads must drop
  // the cached auto value and the next query recompute at the new count.
  runtime::set_threads(2);
  runtime::DispatchCostModel m2;
  m2.threads = 2;
  EXPECT_EQ(runtime::level_serial_cutoff(), runtime::compute_serial_cutoff(m2));
  EXPECT_EQ(runtime::level_serial_cutoff_source(), runtime::SerialCutoffSource::kAuto);

  // At one thread the pool can never pay: the cutoff saturates at the cap.
  runtime::set_threads(1);
  EXPECT_EQ(runtime::level_serial_cutoff(), runtime::kSerialCutoffCap);
}

TEST(Runtime, SerialCutoffExplicitInstallSurvivesSetThreads) {
  ThreadGuard guard;
  CutoffGuard cutoff_guard;
  runtime::set_level_serial_cutoff(7);
  EXPECT_EQ(runtime::level_serial_cutoff(), 7u);
  EXPECT_EQ(runtime::level_serial_cutoff_source(), runtime::SerialCutoffSource::kExplicit);
  // serve sets threads then the cutoff per job; a later set_threads must not
  // silently revert the explicit install to the auto model.
  runtime::set_threads(3);
  EXPECT_EQ(runtime::level_serial_cutoff(), 7u);
  EXPECT_EQ(runtime::level_serial_cutoff_source(), runtime::SerialCutoffSource::kExplicit);
}

TEST(Runtime, SerialCutoffEnvOverrideWinsOverAuto) {
  ThreadGuard guard;
  CutoffGuard cutoff_guard;
  ::setenv("STATSIZE_SERIAL_CUTOFF", "123", 1);
  runtime::reset_level_serial_cutoff();
  EXPECT_EQ(runtime::level_serial_cutoff(), 123u);
  EXPECT_EQ(runtime::level_serial_cutoff_source(), runtime::SerialCutoffSource::kEnv);
  runtime::set_threads(4);  // env installs survive thread-count changes
  EXPECT_EQ(runtime::level_serial_cutoff(), 123u);
  ::unsetenv("STATSIZE_SERIAL_CUTOFF");
  runtime::reset_level_serial_cutoff();
  EXPECT_EQ(runtime::level_serial_cutoff_source(), runtime::SerialCutoffSource::kAuto);
}

TEST(Runtime, MeasureChunkDispatchMeasuresARealPoolAtOneThread) {
  ThreadGuard guard;
  // At a 1-thread setting runtime::parallel_for short-circuits to a plain
  // loop; the measurement must not silently report that near-zero cost as
  // the pool's dispatch overhead. It spins up a temporary 2-thread pool and
  // says so via the out-parameter.
  runtime::set_threads(1);
  bool on_temporary = false;
  const double ns1 = runtime::measure_chunk_dispatch_ns(2, &on_temporary);
  EXPECT_TRUE(on_temporary);
  EXPECT_GT(ns1, 0.0);

  runtime::set_threads(2);
  const double ns2 = runtime::measure_chunk_dispatch_ns(2, &on_temporary);
  EXPECT_FALSE(on_temporary);
  EXPECT_GT(ns2, 0.0);
}

TEST(Runtime, BlockedReductionsAreThreadCountInvariant) {
  ThreadGuard guard;
  std::vector<double> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 1e-3 * static_cast<double>((i * 2654435761U) % 1000) - 0.3;
  }
  auto block_sum = [&](std::size_t b, std::size_t e) {
    double acc = 0.0;
    for (std::size_t i = b; i < e; ++i) acc += data[i];
    return acc;
  };
  runtime::set_threads(1);
  const double s1 = runtime::parallel_sum_blocks(data.size(), 128, block_sum);
  runtime::set_threads(4);
  const double s4 = runtime::parallel_sum_blocks(data.size(), 128, block_sum);
  EXPECT_EQ(s1, s4);  // bitwise: same blocks, same combine order
}

// ---------------------------------------------------------------------------
// LevelSchedule
// ---------------------------------------------------------------------------

TEST(LevelSchedule, RejectsNonFinalizedCircuit) {
  const netlist::CellLibrary& lib = netlist::CellLibrary::standard();
  netlist::Circuit c(lib);
  const netlist::NodeId a = c.add_input("a");
  c.add_gate(lib.cell_for_inputs(1), {a}, "g");
  EXPECT_THROW(runtime::LevelSchedule sched(c), std::logic_error);
}

TEST(LevelSchedule, LevelsRespectDependenciesAndCoverAllGates) {
  const netlist::Circuit c = medium_dag();
  const runtime::LevelSchedule sched(c);
  EXPECT_EQ(sched.num_levels(), c.depth());
  int seen = 0;
  for (int l = 0; l < sched.num_levels(); ++l) {
    for (netlist::NodeId id : sched.level(l)) {
      EXPECT_EQ(c.node_level(id), l + 1);
      for (netlist::NodeId f : c.node(id).fanins) {
        EXPECT_LT(c.node_level(f), l + 1) << "fanin scheduled at or after its sink";
      }
      ++seen;
    }
  }
  EXPECT_EQ(seen, c.num_gates());
}

TEST(LevelSchedule, ForEachGateVisitsEveryGateOnce) {
  ThreadGuard guard;
  runtime::set_threads(4);
  const netlist::Circuit c = medium_dag();
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(c.num_nodes()));
  runtime::LevelSchedule(c).for_each_gate(8, [&](netlist::NodeId id) {
    hits[static_cast<std::size_t>(id)].fetch_add(1);
  });
  for (netlist::NodeId id : c.topo_order()) {
    const int expect = c.node(id).kind == netlist::NodeKind::kGate ? 1 : 0;
    EXPECT_EQ(hits[static_cast<std::size_t>(id)].load(), expect);
  }
}

// ---------------------------------------------------------------------------
// Determinism across thread counts — the acceptance bar for the runtime.
// ---------------------------------------------------------------------------

TEST(Determinism, SstaArrivalsBitwiseEqualAcrossThreadCounts) {
  ThreadGuard guard;
  const netlist::Circuit c = medium_dag();
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.3);
  const auto delays = calc.all_delays(speed);

  runtime::set_threads(1);  // serial branch (below parallel cutoff by thread count)
  const ssta::TimingReport serial = ssta::run_ssta(c, delays);
  for (int threads : {2, 4}) {
    runtime::set_threads(threads);
    const ssta::TimingReport par = ssta::run_ssta(c, delays);
    ASSERT_EQ(par.arrival.size(), serial.arrival.size());
    for (std::size_t i = 0; i < serial.arrival.size(); ++i) {
      EXPECT_EQ(par.arrival[i].mu, serial.arrival[i].mu) << "node " << i;
      EXPECT_EQ(par.arrival[i].var, serial.arrival[i].var) << "node " << i;
    }
    EXPECT_EQ(par.circuit_delay.mu, serial.circuit_delay.mu);
    EXPECT_EQ(par.circuit_delay.var, serial.circuit_delay.var);
  }
}

TEST(Determinism, MonteCarloMomentsExactlyEqualAcrossThreadCounts) {
  ThreadGuard guard;
  const netlist::Circuit c = medium_dag(300);
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const auto delays = calc.all_delays(speed);
  ssta::MonteCarloOptions mco;
  mco.num_samples = 2000;  // not a multiple of the 256-sample chunk
  mco.seed = 42;

  runtime::set_threads(1);
  const ssta::MonteCarloResult serial = ssta::run_monte_carlo(c, delays, mco);
  const std::vector<double> crit_serial = ssta::monte_carlo_criticality(c, delays, mco);
  for (int threads : {2, 4}) {
    runtime::set_threads(threads);
    const ssta::MonteCarloResult par = ssta::run_monte_carlo(c, delays, mco);
    EXPECT_EQ(par.mean, serial.mean);
    EXPECT_EQ(par.stddev, serial.stddev);
    EXPECT_EQ(par.min, serial.min);
    EXPECT_EQ(par.max, serial.max);
    ASSERT_EQ(par.samples.size(), serial.samples.size());
    EXPECT_EQ(0, std::memcmp(par.samples.data(), serial.samples.data(),
                             serial.samples.size() * sizeof(double)));
    EXPECT_EQ(ssta::monte_carlo_criticality(c, delays, mco), crit_serial);
  }
}

TEST(Determinism, FunctionGroupEvalAndGradBitwiseEqualAcrossThreadCounts) {
  ThreadGuard guard;
  // Big enough to cross the parallel-element threshold.
  nlp::Problem p;
  const int nvars = 200;
  for (int i = 0; i < nvars; ++i) p.add_variable(0.1, 10.0, 1.0 + 0.01 * i);
  nlp::FunctionGroup g;
  g.constant = 0.5;
  const nlp::ElementFunction* prod = p.own(std::make_unique<nlp::ProductElement>());
  const nlp::ElementFunction* sq = p.own(std::make_unique<nlp::SquareElement>());
  for (int k = 0; k < 1000; ++k) {
    const int a = (k * 7) % nvars;
    const int b = (k * 13 + 5) % nvars;
    if (k % 2 == 0) {
      g.elements.push_back({prod, {a, b}, 0.01 * k - 3.0});
    } else {
      g.elements.push_back({sq, {a}, 0.02 * k - 5.0});
    }
    g.linear.push_back({a, 0.001 * k});
  }
  const std::vector<double> x = p.start();

  runtime::set_threads(1);
  const double v1 = g.eval(x);
  std::vector<double> grad1(static_cast<std::size_t>(nvars), 0.0);
  g.accumulate_grad(x, 1.5, grad1);
  for (int threads : {2, 4}) {
    runtime::set_threads(threads);
    EXPECT_EQ(g.eval(x), v1);
    std::vector<double> grad(static_cast<std::size_t>(nvars), 0.0);
    g.accumulate_grad(x, 1.5, grad);
    EXPECT_EQ(grad, grad1);
  }
}

TEST(Determinism, AugLagEvalBitwiseEqualAcrossThreadCounts) {
  ThreadGuard guard;
  const netlist::Circuit c = medium_dag(200);
  core::SizingSpec spec;
  spec.objective = core::Objective::min_delay(0.0);
  const std::vector<double> start(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const core::FullSpaceFormulation form = core::build_full_space(c, spec, start);
  const nlp::Problem& p = *form.problem;
  std::vector<double> multipliers(static_cast<std::size_t>(p.num_constraints()), 0.25);
  const std::vector<double> x = p.start();

  runtime::set_threads(1);
  nlp::AugLagModel serial_model(p, multipliers, 10.0);
  std::vector<double> grad1;
  const double psi1 = serial_model.eval(x, &grad1);
  const double probe1 = serial_model.eval(x, nullptr);
  std::vector<double> c1;
  p.eval_constraints(x, c1);
  const double viol1 = p.max_constraint_violation(x);

  for (int threads : {2, 4}) {
    runtime::set_threads(threads);
    nlp::AugLagModel model(p, multipliers, 10.0);
    std::vector<double> grad;
    EXPECT_EQ(model.eval(x, &grad), psi1);
    EXPECT_EQ(grad, grad1);
    EXPECT_EQ(model.eval(x, nullptr), probe1);
    std::vector<double> cv;
    p.eval_constraints(x, cv);
    EXPECT_EQ(cv, c1);
    EXPECT_EQ(p.max_constraint_violation(x), viol1);
  }
}

TEST(Determinism, ReducedSpaceGradientBitwiseEqualAcrossThreadCounts) {
  ThreadGuard guard;
  const netlist::Circuit c = medium_dag();
  const core::ReducedEvaluator eval(c, {0.25, 0.0});
  std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.7);

  runtime::set_threads(1);
  std::vector<double> grad1;
  const stat::NormalRV t1 = eval.eval_with_grad(speed, 1.0, 0.5, grad1);
  for (int threads : {2, 4}) {
    runtime::set_threads(threads);
    std::vector<double> grad;
    const stat::NormalRV t = eval.eval_with_grad(speed, 1.0, 0.5, grad);
    EXPECT_EQ(t.mu, t1.mu);
    EXPECT_EQ(t.var, t1.var);
    EXPECT_EQ(grad, grad1);
  }
}

TEST(Determinism, KernelsBitwiseEqualAcrossThreadsAndSerialCutoffs) {
  // The full acceptance matrix: --jobs {1,2,4} x serial-cutoff {0, advised}
  // for every parallel kernel. Cutoff 0 offers every level/fold to the pool;
  // the advised (auto) cutoff runs narrow levels inline — both must be
  // bit-identical to the 1-thread reference, or the cutoff would not be the
  // pure wall-clock lever the advisor promises.
  ThreadGuard guard;
  CutoffGuard cutoff_guard;
  const netlist::Circuit c = medium_dag(300);
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.1);
  const auto delays = calc.all_delays(speed);
  ssta::MonteCarloOptions mco;
  mco.num_samples = 1500;  // not a multiple of the 256-trial chunk
  mco.seed = 9;

  core::SizingSpec spec;
  spec.objective = core::Objective::min_delay(0.0);
  const std::vector<double> ones(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const core::FullSpaceFormulation form = core::build_full_space(c, spec, ones);
  const nlp::Problem& p = *form.problem;
  const std::vector<double> mult(static_cast<std::size_t>(p.num_constraints()), 0.25);
  const std::vector<double> x = p.start();
  std::vector<double> v(static_cast<std::size_t>(p.num_vars()));
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::sin(0.37 * static_cast<double>(i)) + 0.1;
  }
  const core::ReducedEvaluator red(c, {0.25, 0.0});

  runtime::set_threads(1);
  runtime::set_level_serial_cutoff(0);
  nlp::AugLagModel model(p, mult, 10.0);
  std::vector<double> grad_scratch;
  model.eval(x, &grad_scratch);  // snapshot the element Hessians at x
  const ssta::TimingReport ssta_ref = ssta::run_ssta(c, delays);
  const ssta::MonteCarloResult mc_ref = ssta::run_monte_carlo(c, delays, mco);
  const std::vector<double> crit_ref = ssta::monte_carlo_criticality(c, delays, mco);
  std::vector<double> hv_ref;
  model.hess_vec(v, hv_ref);
  std::vector<double> adj_ref;
  const stat::NormalRV t_ref = red.eval_with_grad(ones, 1.0, 0.5, adj_ref);

  for (const int threads : {1, 2, 4}) {
    for (const bool advised : {false, true}) {
      runtime::set_threads(threads);
      if (advised) {
        runtime::reset_level_serial_cutoff();  // auto: the cost-model crossover
      } else {
        runtime::set_level_serial_cutoff(0);  // pool everything
      }
      const std::string where = std::to_string(threads) + " threads, cutoff " +
                                (advised ? "advised" : "0");

      const ssta::TimingReport rep = ssta::run_ssta(c, delays);
      ASSERT_EQ(rep.arrival.size(), ssta_ref.arrival.size());
      for (std::size_t i = 0; i < rep.arrival.size(); ++i) {
        EXPECT_EQ(rep.arrival[i].mu, ssta_ref.arrival[i].mu) << where << ", node " << i;
        EXPECT_EQ(rep.arrival[i].var, ssta_ref.arrival[i].var) << where << ", node " << i;
      }
      EXPECT_EQ(rep.circuit_delay.mu, ssta_ref.circuit_delay.mu) << where;
      EXPECT_EQ(rep.circuit_delay.var, ssta_ref.circuit_delay.var) << where;

      const ssta::MonteCarloResult mc = ssta::run_monte_carlo(c, delays, mco);
      EXPECT_EQ(mc.mean, mc_ref.mean) << where;
      EXPECT_EQ(mc.stddev, mc_ref.stddev) << where;
      EXPECT_EQ(mc.samples, mc_ref.samples) << where;
      EXPECT_EQ(ssta::monte_carlo_criticality(c, delays, mco), crit_ref) << where;

      std::vector<double> hv;
      model.hess_vec(v, hv);
      EXPECT_EQ(hv, hv_ref) << where;

      std::vector<double> adj;
      const stat::NormalRV t = red.eval_with_grad(ones, 1.0, 0.5, adj);
      EXPECT_EQ(t.mu, t_ref.mu) << where;
      EXPECT_EQ(t.var, t_ref.var) << where;
      EXPECT_EQ(adj, adj_ref) << where;
    }
  }
}

// ---------------------------------------------------------------------------
// ScatterPlan
// ---------------------------------------------------------------------------

TEST(ScatterPlan, FoldAddEqualsSerialScatterInItemOrder) {
  // Overlapping targets, duplicates inside one item, and an untouched target.
  // The fold must produce exactly the doubles the serial scatter produces,
  // because per-target slot order is the serial write order.
  runtime::ScatterPlan plan;
  const std::vector<std::vector<int>> items = {
      {3, 1, 3, 0}, {1, 2}, {0, 0, 4}, {2, 3, 1}, {}};
  std::vector<std::size_t> first;
  for (const auto& it : items) first.push_back(plan.add_item(it.data(), it.size()));
  plan.freeze(6);
  EXPECT_TRUE(plan.frozen());
  EXPECT_EQ(plan.num_slots(), 12u);
  EXPECT_EQ(plan.num_targets(), 6u);

  std::vector<double> vals(plan.num_slots());
  for (std::size_t s = 0; s < vals.size(); ++s) vals[s] = 0.1 + 1.7 * static_cast<double>(s);

  std::vector<double> want(6, 0.25);  // fold adds on top of existing content
  for (std::size_t k = 0; k < items.size(); ++k) {
    for (std::size_t j = 0; j < items[k].size(); ++j) {
      want[static_cast<std::size_t>(items[k][j])] += vals[first[k] + j];
    }
  }

  for (int threads : {1, 4}) {
    ThreadGuard guard;
    runtime::set_threads(threads);
    std::vector<double> out(6, 0.25);
    plan.fold_add(vals.data(), out.data(), /*grain=*/2);
    EXPECT_EQ(out, want);
  }
  EXPECT_EQ(want[5], 0.25);  // target 5 has no slots — untouched
}

TEST(ScatterPlan, RejectsMisuse) {
  runtime::ScatterPlan plan;
  const int targets[2] = {0, 1};
  plan.add_item(targets, 2);
  std::vector<double> vals(2, 0.0);
  std::vector<double> out(2, 0.0);
  EXPECT_THROW(plan.fold_add(vals.data(), out.data()), std::logic_error);
  plan.freeze(2);
  EXPECT_THROW(plan.add_item(targets, 2), std::logic_error);
  EXPECT_THROW(plan.freeze(2), std::logic_error);

  runtime::ScatterPlan bad;
  const int oob[1] = {7};
  bad.add_item(oob, 1);
  EXPECT_THROW(bad.freeze(4), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Hessian-vector products (the former serial islands)
// ---------------------------------------------------------------------------

TEST(Determinism, AugLagHessVecBitwiseEqualAcrossThreadCounts) {
  ThreadGuard guard;
  const netlist::Circuit c = medium_dag(300);
  core::SizingSpec spec;
  spec.objective = core::Objective::min_delay(0.0);
  const std::vector<double> start(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const core::FullSpaceFormulation form = core::build_full_space(c, spec, start);
  const nlp::Problem& p = *form.problem;
  const std::vector<double> multipliers(static_cast<std::size_t>(p.num_constraints()), 0.25);
  const std::vector<double> x = p.start();
  std::vector<double> v(static_cast<std::size_t>(p.num_vars()));
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::sin(0.37 * static_cast<double>(i)) + 0.1;
  }

  runtime::set_threads(1);
  nlp::AugLagModel serial_model(p, multipliers, 10.0);
  std::vector<double> grad;
  serial_model.eval(x, &grad);  // refresh the element snapshots at x
  std::vector<double> hv1;
  serial_model.hess_vec(v, hv1);

  for (int threads : {2, 4}) {
    runtime::set_threads(threads);
    nlp::AugLagModel model(p, multipliers, 10.0);
    model.eval(x, &grad);
    std::vector<double> hv;
    model.hess_vec(v, hv);
    EXPECT_EQ(hv, hv1);
  }
}

TEST(AugLagHessVec, MatchesFiniteDifferenceOfGradientAtAnyThreadCount) {
  // v^T H v column check on a Table-1 sized sizing problem: hess_vec must
  // match (grad(x + h v) - grad(x - h v)) / 2h in serial and parallel modes.
  const netlist::Circuit c = medium_dag();
  core::SizingSpec spec;
  spec.objective = core::Objective::min_delay(0.0);
  const std::vector<double> start(static_cast<std::size_t>(c.num_nodes()), 1.2);
  const core::FullSpaceFormulation form = core::build_full_space(c, spec, start);
  const nlp::Problem& p = *form.problem;
  const std::vector<double> multipliers(static_cast<std::size_t>(p.num_constraints()), 0.1);
  const std::vector<double> x = p.start();
  std::vector<double> v(static_cast<std::size_t>(p.num_vars()));
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::cos(0.23 * static_cast<double>(i));
  }

  for (int threads : {1, 4}) {
    ThreadGuard guard;
    runtime::set_threads(threads);
    nlp::AugLagModel model(p, multipliers, 10.0);
    const double h = 1e-6;
    std::vector<double> xp = x;
    std::vector<double> xm = x;
    for (std::size_t i = 0; i < x.size(); ++i) {
      xp[i] += h * v[i];
      xm[i] -= h * v[i];
    }
    std::vector<double> gp;
    std::vector<double> gm;
    model.eval(xp, &gp);
    model.eval(xm, &gm);
    std::vector<double> grad;
    model.eval(x, &grad);  // re-snapshot at x before the Hessian product
    std::vector<double> hv;
    model.hess_vec(v, hv);
    for (std::size_t i = 0; i < hv.size(); ++i) {
      const double fd = (gp[i] - gm[i]) / (2.0 * h);
      EXPECT_NEAR(hv[i], fd, 5e-3 * (1.0 + std::abs(hv[i])))
          << "component " << i << " at " << threads << " threads";
    }
  }
}

}  // namespace
