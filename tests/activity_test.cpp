// Tests for the switching-activity engine (the power-objective substrate):
// closed-form signal probabilities per cell function, Monte Carlo agreement
// on whole circuits, and the power-weight construction.

#include "ssta/activity.h"

#include "netlist/blif.h"
#include "netlist/generators.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

namespace statsize::ssta {
namespace {

using netlist::CellFunction;
using netlist::CellLibrary;
using netlist::Circuit;
using netlist::NodeId;

/// Circuit with one gate of the given type fed by fresh inputs.
Circuit single_gate(const char* cell_name) {
  const CellLibrary& lib = CellLibrary::standard();
  const int cell = lib.find(cell_name);
  Circuit c(lib);
  std::vector<NodeId> pis;
  for (int i = 0; i < lib.cell(cell).num_inputs; ++i) pis.push_back(c.add_input({}));
  const NodeId g = c.add_gate(cell, pis, "g");
  c.mark_output(g);
  c.finalize();
  return c;
}

double output_probability(const Circuit& c, double pi_prob) {
  return signal_probabilities(c, pi_prob)[static_cast<std::size_t>(c.outputs().front())];
}

TEST(Activity, SingleGateClosedForms) {
  EXPECT_NEAR(output_probability(single_gate("INV"), 0.3), 0.7, 1e-12);
  EXPECT_NEAR(output_probability(single_gate("BUF"), 0.3), 0.3, 1e-12);
  EXPECT_NEAR(output_probability(single_gate("NAND2"), 0.5), 0.75, 1e-12);
  EXPECT_NEAR(output_probability(single_gate("NAND3"), 0.5), 1.0 - 0.125, 1e-12);
  EXPECT_NEAR(output_probability(single_gate("NOR2"), 0.5), 0.25, 1e-12);
  EXPECT_NEAR(output_probability(single_gate("AND2"), 0.4), 0.16, 1e-12);
  EXPECT_NEAR(output_probability(single_gate("OR2"), 0.4), 1.0 - 0.36, 1e-12);
  EXPECT_NEAR(output_probability(single_gate("XOR2"), 0.4), 0.4 * 0.6 * 2, 1e-12);
  // AOI21: !((a&b)|c) at p=0.5 -> (1-0.25)*(1-0.5) = 0.375
  EXPECT_NEAR(output_probability(single_gate("AOI21"), 0.5), 0.375, 1e-12);
  // OAI21: !((a|b)&c) at p=0.5 -> 1 - 0.75*0.5 = 0.625
  EXPECT_NEAR(output_probability(single_gate("OAI21"), 0.5), 0.625, 1e-12);
}

TEST(Activity, ProbabilityEdgeCases) {
  // Deterministic inputs give deterministic outputs.
  EXPECT_NEAR(output_probability(single_gate("NAND2"), 1.0), 0.0, 1e-12);
  EXPECT_NEAR(output_probability(single_gate("NAND2"), 0.0), 1.0, 1e-12);
  EXPECT_THROW(signal_probabilities(single_gate("INV"), 1.5), std::invalid_argument);
}

TEST(Activity, SwitchingActivityIsTwoPOneMinusP) {
  const Circuit c = single_gate("NAND2");
  const auto p = signal_probabilities(c, 0.5);
  const auto a = switching_activity(c, 0.5);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(a[i], 2.0 * p[i] * (1.0 - p[i]), 1e-12);
  }
  // NAND2 at p=0.5: output p=0.75 -> activity 2*0.75*0.25 = 0.375.
  EXPECT_NEAR(a[static_cast<std::size_t>(c.outputs().front())], 0.375, 1e-12);
}

TEST(Activity, TreeProbabilitiesMatchMonteCarlo) {
  // The tree has no reconvergence, so the analytic propagation is exact.
  const Circuit c = netlist::make_tree_circuit();
  const auto analytic = signal_probabilities(c, 0.5);
  const auto mc = signal_probabilities_monte_carlo(c, 60000, 3);
  for (NodeId id : c.topo_order()) {
    EXPECT_NEAR(analytic[static_cast<std::size_t>(id)], mc[static_cast<std::size_t>(id)],
                0.01)
        << id;
  }
}

TEST(Activity, ReconvergentCircuitStaysClose) {
  // With reconvergence the independence approximation has bounded error.
  netlist::RandomDagParams p;
  p.num_gates = 80;
  p.num_inputs = 40;  // moderate reconvergence, like mapped logic
  p.seed = 9;
  const Circuit c = netlist::make_random_dag(p);
  const auto analytic = signal_probabilities(c, 0.5);
  const auto mc = signal_probabilities_monte_carlo(c, 40000, 5);
  double worst = 0.0;
  double total = 0.0;
  for (NodeId id : c.topo_order()) {
    const double err = std::abs(analytic[static_cast<std::size_t>(id)] -
                                mc[static_cast<std::size_t>(id)]);
    worst = std::max(worst, err);
    total += err;
  }
  // Individual nodes fed by strongly correlated signals can be far off (the
  // known weakness of independence-based probability propagation); the bulk
  // of the circuit must stay accurate.
  EXPECT_LT(total / c.num_nodes(), 0.10);
  EXPECT_LT(worst, 0.6);
}

TEST(Activity, PowerWeightsArePositiveForGatesOnly) {
  const Circuit c = netlist::make_mcnc_like("apex2");
  const auto w = power_weights(c);
  for (NodeId id : c.topo_order()) {
    if (c.node(id).kind == netlist::NodeKind::kGate) {
      EXPECT_GT(w[static_cast<std::size_t>(id)], 0.0);
    } else {
      EXPECT_EQ(w[static_cast<std::size_t>(id)], 0.0);
    }
  }
}

TEST(Activity, PowerWeightsScaleWithActivity) {
  // An inverter fed by a constant-biased input (p near 1) toggles rarely; one
  // fed by p=0.5 toggles maximally. Its driver-side weight must reflect that.
  const CellLibrary& lib = CellLibrary::standard();
  Circuit c(lib);
  const NodeId a = c.add_input("a");
  const NodeId g0 = c.add_gate(lib.find("INV"), {a}, "hot");
  const NodeId g1 = c.add_gate(lib.find("INV"), {g0}, "out");
  c.mark_output(g1);
  c.finalize();
  const auto w_balanced = power_weights(c, 0.5);
  const auto w_biased = power_weights(c, 0.95);
  EXPECT_GT(w_balanced[static_cast<std::size_t>(g0)], w_biased[static_cast<std::size_t>(g0)]);
}

TEST(Activity, MonteCarloSeedReproducible) {
  const Circuit c = netlist::make_tree_circuit();
  const auto a = signal_probabilities_monte_carlo(c, 2000, 42);
  const auto b = signal_probabilities_monte_carlo(c, 2000, 42);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace statsize::ssta
