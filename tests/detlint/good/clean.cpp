// detlint corpus: known-good. The deterministic counterparts of every bad
// snippet: an ordered map fold, an explicitly seeded SplitMix64, a
// direct-indexed parallel write (each index owns its slot), and a reviewed
// suppression — the allow() comment is itself part of the corpus, proving
// the escape hatch works.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

template <class Fn>
void parallel_for(std::size_t n, std::size_t grain, Fn&& fn);

double sum_loads(const std::map<std::string, double>& loads) {
  double total = 0.0;
  for (const auto& [name, load] : loads) total += load;
  return total;
}

double seeded_start(std::uint64_t seed) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

void scale_in_place(std::vector<double>& x, double factor) {
  parallel_for(x.size(), 64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      x[i] *= factor;   // disjoint index-keyed slots: no scatter
      x[i] += factor;   // direct index: not an indirect accumulation
    }
  });
}

void reviewed_gather(const std::vector<int>& targets, std::vector<double>& out) {
  parallel_for(targets.size(), 64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // Targets are a verified permutation here, so each slot has one writer.
      // detlint: allow(DET003)
      out[targets[i]] += 1.0;
    }
  });
}
