// Corpus: the sanctioned way to jitter a retry schedule — the house
// SplitMix64 stream advanced from an explicit seed (mirrors
// serve::Client::backoff_schedule). Fully replayable: the same seed produces
// the same delays on every run and every host, so chaos tests can assert the
// exact schedule. Must scan clean.
#include <cstdint>

namespace statsize::serve {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Deterministic jitter in [0.5, 1.0) * base_ms, advanced from `state` —
/// seeded once from ClientOptions::jitter_seed, never from the environment.
double jitter_ms(double base_ms, std::uint64_t& state) {
  const double u = static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  return base_ms * (0.5 + 0.5 * u);
}

}  // namespace statsize::serve
