// Corpus: the serve daemon's sanctioned wall-clock wrapper. This file lives
// under a serve/ directory and names `serve::now` at the clock sites, so
// DET002's carve-out applies and the file must scan clean.
#include <ctime>
#include <cstdint>

namespace statsize::serve {

std::int64_t now() {
  return static_cast<std::int64_t>(std::time(nullptr));  // serve::now
}

// A marker on the preceding line sanctions the call below it: serve::now
std::int64_t started_at = static_cast<std::int64_t>(std::time(nullptr));

}  // namespace statsize::serve
