// detlint corpus: known-bad. An indirect-indexed accumulation inside a
// parallel_for body: two chunks can hit the same fanin[e] target, and even
// with atomics the fold order would vary with the chunk schedule.
// Expected finding: DET003.

#include <cstddef>
#include <vector>

template <class Fn>
void parallel_for(std::size_t n, std::size_t grain, Fn&& fn);

void accumulate_fanin_load(const std::vector<int>& fanin, const std::vector<double>& load,
                           std::vector<double>& out) {
  parallel_for(fanin.size(), 64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t e = begin; e < end; ++e) {
      out[fanin[e]] += load[e];
    }
  });
}
