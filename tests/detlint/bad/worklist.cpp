// detlint corpus: known-bad. The wrong way to parallelize an incremental
// (ECO) repropagation worklist: chunks of one level bucket push partial
// arrival sums into their fanout targets through an indirect index. Two
// bucket gates sharing a fanout race on the same slot, and the fold order
// depends on the chunk schedule — the correct engine (ssta/incremental.cpp)
// instead writes direct-indexed scratch slots in the parallel phase and
// commits/enqueues serially.
// Expected finding: DET003.

#include <cstddef>
#include <vector>

template <class Fn>
void parallel_for(std::size_t n, std::size_t grain, Fn&& fn);

void repropagate_level(const std::vector<int>& bucket, const std::vector<int>& fanout_of,
                       const std::vector<double>& arrival, std::vector<double>& partial) {
  parallel_for(bucket.size(), 32, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const int gate = bucket[i];
      partial[fanout_of[gate]] += arrival[gate];
    }
  });
}
