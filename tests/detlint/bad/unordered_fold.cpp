// detlint corpus: known-bad. A fold over an unordered container — the
// iteration order depends on the hash seed, so `total` differs run to run.
// Expected finding: DET001.

#include <string>
#include <unordered_map>

double sum_loads(const std::unordered_map<std::string, double>& loads) {
  double total = 0.0;
  for (const auto& [name, load] : loads) total += load;
  return total;
}
