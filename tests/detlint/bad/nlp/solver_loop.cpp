// detlint corpus: known-bad. An unbounded solver iteration loop (this file
// sits under an nlp/ path, detlint's solver-code scope) with no
// runtime::poll_cancel() checkpoint — a deadline or Ctrl-C can never preempt
// it. Expected finding: DET004.

double solve(double x) {
  double step = 1.0;
  while (true) {
    x -= step * x;
    step *= 0.5;
    if (step < 1e-12) break;
  }
  return x;
}
