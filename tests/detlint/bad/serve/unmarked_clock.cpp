// Corpus: a wall-clock read under serve/ WITHOUT the serve::now marker. The
// DET002 carve-out is for the sanctioned wrapper only — a bare clock call in
// daemon code must still fire, or the exemption would swallow real leaks.
#include <ctime>

namespace statsize::serve {

double job_seed() {
  return static_cast<double>(std::time(nullptr));  // DET002: result-path clock
}

}  // namespace statsize::serve
