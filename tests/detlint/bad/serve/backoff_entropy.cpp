// Corpus: retry-backoff jitter drawn from ambient entropy. A client fleet
// jittered this way is irreproducible — the retry schedule (and therefore
// which request lands first after a 503) changes run to run, which breaks
// the serve layer's replayable-chaos contract. DET002 must fire on both the
// hidden-seed generator and the hardware entropy source; the fix is the
// seeded SplitMix64 stream in good/serve/backoff_seeded.cpp.
#include <cstdlib>
#include <random>

namespace statsize::serve {

double jitter_ms(double base_ms) {
  std::random_device rd;  // DET002: hardware entropy in the retry schedule
  const double u = static_cast<double>(rd()) / 4294967296.0;
  return base_ms * (0.5 + 0.5 * u);
}

double legacy_jitter_ms(double base_ms) {
  // DET002: rand() hides global seed state — no way to replay this schedule.
  return base_ms * (static_cast<double>(std::rand()) / RAND_MAX);
}

}  // namespace statsize::serve
