// detlint corpus: known-bad. Wall-clock and hidden-seed entropy on a result
// path — three separate sources, each independently non-reproducible.
// Expected findings: DET002 (x3).

#include <cstdlib>
#include <ctime>
#include <random>

double noisy_start() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  std::random_device rd;
  return static_cast<double>(std::rand() + rd()) / 2.0;
}
