// Cross-cutting randomized property tests: invariants that must hold for any
// circuit and any parameters, exercised over seeds with parameterized gtest.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>

#include <gtest/gtest.h>

#include "core/reduced_space.h"
#include "core/sizer.h"
#include "netlist/generators.h"
#include "runtime/runtime.h"
#include "ssta/canonical.h"
#include "ssta/monte_carlo.h"
#include "ssta/ssta.h"
#include "stat/clark.h"

namespace statsize {
namespace {

using netlist::Circuit;
using netlist::NodeId;
using netlist::NodeKind;
using stat::NormalRV;

Circuit random_circuit(int seed, int gates = 80) {
  netlist::RandomDagParams p;
  p.num_gates = gates;
  p.num_inputs = 12 + seed % 17;
  p.seed = static_cast<std::uint64_t>(seed) * 7919 + 3;
  return make_random_dag(p);
}

class CircuitProperties : public ::testing::TestWithParam<int> {};

TEST_P(CircuitProperties, ArrivalDominatesEveryFanin) {
  // mu of a gate's arrival >= mu of each fanin arrival (max + positive delay).
  const Circuit c = random_circuit(GetParam());
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.5);
  const ssta::TimingReport r = ssta::run_ssta(c, calc.all_delays(speed));
  for (NodeId id : c.topo_order()) {
    const netlist::Node& n = c.node(id);
    if (n.kind != NodeKind::kGate) continue;
    for (NodeId f : n.fanins) {
      ASSERT_GE(r.arrival[static_cast<std::size_t>(id)].mu,
                r.arrival[static_cast<std::size_t>(f)].mu - 1e-12);
    }
  }
}

TEST_P(CircuitProperties, SlowingAnyGateNeverSpeedsTheCircuitMuchBeyondApproximation) {
  // The TRUE statistical circuit delay is monotone in every gate-delay mean.
  // The Clark moment-matching chain is *almost* monotone: raising one
  // operand's mean can shrink a downstream max's matched variance (dominance
  // narrows the mixture), which shrinks the next max's theta*phi mean bump —
  // a second-order approximation artifact, observed at the 1e-3..1e-2 level.
  // We pin exactly that: increases are unbounded, decreases must stay within
  // the approximation noise.
  const Circuit c = random_circuit(GetParam(), 50);
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.5);
  auto delays = calc.all_delays(speed);
  const double base = ssta::run_ssta(c, delays).circuit_delay.mu;

  int checked = 0;
  for (NodeId id : c.topo_order()) {
    if (c.node(id).kind != NodeKind::kGate) continue;
    if (++checked % 5 != 0) continue;
    const NormalRV saved = delays[static_cast<std::size_t>(id)];
    delays[static_cast<std::size_t>(id)].mu += 0.5;
    const double slowed = ssta::run_ssta(c, delays).circuit_delay.mu;
    delays[static_cast<std::size_t>(id)] = saved;
    ASSERT_GE(slowed, base - 0.02) << "gate " << id;
  }

  // With zero sigmas the chain degenerates to the deterministic max, where
  // monotonicity is exact.
  const ssta::DelayCalculator det(c, {0.0, 0.0});
  auto det_delays = det.all_delays(speed);
  const double det_base = ssta::run_ssta(c, det_delays).circuit_delay.mu;
  checked = 0;
  for (NodeId id : c.topo_order()) {
    if (c.node(id).kind != NodeKind::kGate) continue;
    if (++checked % 7 != 0) continue;
    const NormalRV saved = det_delays[static_cast<std::size_t>(id)];
    det_delays[static_cast<std::size_t>(id)].mu += 0.5;
    const double slowed = ssta::run_ssta(c, det_delays).circuit_delay.mu;
    det_delays[static_cast<std::size_t>(id)] = saved;
    ASSERT_GE(slowed, det_base - 1e-12) << "gate " << id;
  }
}

TEST_P(CircuitProperties, MonteCarloYieldIsMonotoneInDeadline) {
  const Circuit c = random_circuit(GetParam(), 40);
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  ssta::MonteCarloOptions opt;
  opt.num_samples = 4000;
  opt.seed = static_cast<std::uint64_t>(GetParam());
  const ssta::MonteCarloResult mc = ssta::run_monte_carlo(c, calc.all_delays(speed), opt);
  double prev = -1.0;
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double d = mc.quantile(q);
    const double y = mc.yield(d);
    ASSERT_GE(y, prev);
    ASSERT_NEAR(y, q, 0.03);
    prev = y;
  }
}

TEST_P(CircuitProperties, CorrelationNeverIncreasesTheMeanOfTheMax) {
  // Positive path correlation makes the true E[max] smaller than the
  // independence estimate; the canonical engine must sit at or below it.
  const Circuit c = random_circuit(GetParam());
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const auto delays = calc.all_delays(speed);
  const double ind = ssta::run_ssta(c, delays).circuit_delay.mu;
  const double can = ssta::run_canonical_ssta(c, delays).circuit_delay.mean();
  ASSERT_LE(can, ind + 1e-9);
}

TEST_P(CircuitProperties, TighterDeadlineNeverNeedsLessArea) {
  const Circuit c = random_circuit(GetParam(), 40);
  core::SizingSpec spec;
  spec.objective = core::Objective::min_area();
  const ssta::DelayCalculator calc(c, spec.sigma_model);
  std::vector<double> s(static_cast<std::size_t>(c.num_nodes()), spec.max_speed);
  const double lo = ssta::run_ssta(calc, s).circuit_delay.mu;
  std::fill(s.begin(), s.end(), 1.0);
  const double hi = ssta::run_ssta(calc, s).circuit_delay.mu;

  core::SizerOptions opt;
  opt.method = core::Method::kReducedSpace;
  double prev_area = 1e100;
  for (double frac : {0.25, 0.5, 0.75}) {  // tightest first
    spec.delay_constraint = core::DelayConstraint::at_most(lo + frac * (hi - lo));
    const core::SizingResult r = core::Sizer(c, spec).run(opt);
    ASSERT_TRUE(r.converged) << r.status;
    ASSERT_LE(r.sum_speed, prev_area + 0.01 * prev_area);
    prev_area = r.sum_speed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircuitProperties, ::testing::Range(1, 7));

// --- clark_min statistical validation -------------------------------------

class ClarkMinVsMc : public ::testing::TestWithParam<int> {};

TEST_P(ClarkMinVsMc, MomentsMatchSampling) {
  std::mt19937_64 rng(GetParam() * 101 + 7);
  std::uniform_real_distribution<double> mu_d(-3.0, 3.0);
  std::uniform_real_distribution<double> s_d(0.2, 2.0);
  const NormalRV a = NormalRV::from_sigma(mu_d(rng), s_d(rng));
  const NormalRV b = NormalRV::from_sigma(mu_d(rng), s_d(rng));
  const NormalRV c = stat::clark_min(a, b);

  std::normal_distribution<double> da(a.mu, a.sigma());
  std::normal_distribution<double> db(b.mu, b.sigma());
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double m = std::min(da(rng), db(rng));
    sum += m;
    sum2 += m * m;
  }
  const double mc_mu = sum / n;
  const double mc_var = sum2 / n - mc_mu * mc_mu;
  EXPECT_NEAR(c.mu, mc_mu, 0.02);
  EXPECT_NEAR(c.var, mc_var, 0.05);
  EXPECT_LE(c.mu, std::min(a.mu, b.mu) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClarkMinVsMc, ::testing::Range(0, 8));

// --- TimingView equivalence ------------------------------------------------
//
// Every hot sweep (SSTA, corner STA, Monte Carlo, the reduced-space adjoint)
// was retargeted from per-Node walks onto the flat CSR TimingView. The
// refactoring contract is bit-identity, so these tests keep independent
// Node-walk reference engines — written against Circuit/Node only, never the
// view — and require EXPECT_EQ-equal doubles from the production paths, both
// serially (--jobs 1) and on the level-parallel runtime (--jobs 4; the
// circuits sit above the 192-gate parallel cutoff so the parallel sweeps
// really run).

/// Restores the global thread setting on scope exit.
class JobsGuard {
 public:
  JobsGuard() : saved_(runtime::threads()) {}
  ~JobsGuard() { runtime::set_threads(saved_); }

 private:
  int saved_;
};

/// Reference SSTA: topological Node walk, left fold of the pairwise Clark
/// max over fanins, zero input arrivals, PO fold in outputs() order.
std::vector<NormalRV> ref_ssta(const Circuit& c, const std::vector<NormalRV>& delays,
                               NormalRV* total) {
  std::vector<NormalRV> arrival(static_cast<std::size_t>(c.num_nodes()));
  for (NodeId id : c.topo_order()) {
    const netlist::Node& n = c.node(id);
    if (n.kind == NodeKind::kPrimaryInput) {
      arrival[static_cast<std::size_t>(id)] = NormalRV{};
      continue;
    }
    NormalRV u = arrival[static_cast<std::size_t>(n.fanins[0])];
    for (std::size_t k = 1; k < n.fanins.size(); ++k) {
      u = stat::clark_max(u, arrival[static_cast<std::size_t>(n.fanins[k])]);
    }
    arrival[static_cast<std::size_t>(id)] = stat::add(u, delays[static_cast<std::size_t>(id)]);
  }
  NormalRV t = arrival[static_cast<std::size_t>(c.outputs()[0])];
  for (std::size_t k = 1; k < c.outputs().size(); ++k) {
    t = stat::clark_max(t, arrival[static_cast<std::size_t>(c.outputs()[k])]);
  }
  *total = t;
  return arrival;
}

/// Reference worst-corner STA: deterministic max walk at mu + 3 sigma.
std::vector<double> ref_sta_worst(const Circuit& c, const std::vector<NormalRV>& delays,
                                  double* total) {
  std::vector<double> arrival(static_cast<std::size_t>(c.num_nodes()), 0.0);
  for (NodeId id : c.topo_order()) {
    const netlist::Node& n = c.node(id);
    if (n.kind == NodeKind::kPrimaryInput) continue;
    double u = arrival[static_cast<std::size_t>(n.fanins[0])];
    for (std::size_t k = 1; k < n.fanins.size(); ++k) {
      u = std::max(u, arrival[static_cast<std::size_t>(n.fanins[k])]);
    }
    arrival[static_cast<std::size_t>(id)] =
        u + delays[static_cast<std::size_t>(id)].quantile_offset(3.0);
  }
  double t = 0.0;
  for (NodeId o : c.outputs()) t = std::max(t, arrival[static_cast<std::size_t>(o)]);
  *total = t;
  return arrival;
}

/// Reference Monte Carlo: replicates the engine's published chunked-stream
/// determinism contract (256-trial chunks, splitmix64 per-chunk streams, one
/// normal draw per non-input node in topological order, chunk-ordered moment
/// combine) with a per-trial Node walk.
std::vector<double> ref_monte_carlo(const Circuit& c, const std::vector<NormalRV>& delays,
                                    const ssta::MonteCarloOptions& opt, double* mean,
                                    double* stddev) {
  constexpr int kChunkSamples = 256;
  auto stream_seed = [](std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  std::vector<double> samples(static_cast<std::size_t>(opt.num_samples));
  std::vector<double> arrival(static_cast<std::size_t>(c.num_nodes()));
  double sum = 0.0;
  double sum2 = 0.0;
  const std::size_t chunks =
      (static_cast<std::size_t>(opt.num_samples) + kChunkSamples - 1) / kChunkSamples;
  for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
    std::mt19937_64 rng(stream_seed(opt.seed, chunk));
    std::normal_distribution<double> unit(0.0, 1.0);
    const int first = static_cast<int>(chunk) * kChunkSamples;
    const int last = std::min(first + kChunkSamples, opt.num_samples);
    // Moments fold chunk-locally first, then combine in chunk order — the
    // engine's associativity, which a flat running sum would not reproduce.
    double csum = 0.0;
    double csum2 = 0.0;
    for (int trial = first; trial < last; ++trial) {
      for (NodeId id : c.topo_order()) {
        const netlist::Node& n = c.node(id);
        if (n.kind == NodeKind::kPrimaryInput) {
          arrival[static_cast<std::size_t>(id)] = 0.0;
          continue;
        }
        double u = arrival[static_cast<std::size_t>(n.fanins[0])];
        for (std::size_t k = 1; k < n.fanins.size(); ++k) {
          u = std::max(u, arrival[static_cast<std::size_t>(n.fanins[k])]);
        }
        const NormalRV& d = delays[static_cast<std::size_t>(id)];
        double t = d.mu + d.sigma() * unit(rng);
        if (opt.truncate_negative_delays && t < 0.0) t = 0.0;
        arrival[static_cast<std::size_t>(id)] = u + t;
      }
      double total = -1.0;
      for (NodeId o : c.outputs()) {
        total = std::max(total, arrival[static_cast<std::size_t>(o)]);
      }
      samples[static_cast<std::size_t>(trial)] = total;
      csum += total;
      csum2 += total * total;
    }
    sum += csum;
    sum2 += csum2;
  }
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(opt.num_samples);
  const double m = sum / n;
  *mean = m;
  *stddev = std::sqrt(std::max(0.0, sum2 / n - m * m));
  return samples;
}

/// Reference reduced-space gradient: serial Node-walk forward sweep with
/// recorded Clark steps, then the adjoint in reverse level order with the
/// same per-gate write orders the production sweep commits to (fanouts in
/// list order; fanins last-to-first).
NormalRV ref_reduced_grad(const Circuit& c, const ssta::SigmaModel& sm,
                          const std::vector<double>& speed, std::vector<double>& grad) {
  const std::size_t n = static_cast<std::size_t>(c.num_nodes());
  std::vector<NormalRV> arrival(n);
  std::vector<NormalRV> delay(n);
  std::vector<std::vector<stat::ClarkGrad>> steps(n);
  auto load_of = [&](const netlist::Node& node) {
    double load = node.wire_load + (node.is_output ? node.pad_load : 0.0);
    for (NodeId fo : node.fanouts) {
      load += c.library().cell(c.node(fo).cell).c_in * speed[static_cast<std::size_t>(fo)];
    }
    return load;
  };
  for (NodeId id : c.topo_order()) {
    const netlist::Node& node = c.node(id);
    if (node.kind == NodeKind::kPrimaryInput) continue;
    const std::size_t i = static_cast<std::size_t>(id);
    NormalRV u = arrival[static_cast<std::size_t>(node.fanins[0])];
    steps[i].resize(node.fanins.size() - 1);
    for (std::size_t k = 1; k < node.fanins.size(); ++k) {
      u = stat::clark_max_grad(u, arrival[static_cast<std::size_t>(node.fanins[k])],
                               steps[i][k - 1]);
    }
    const netlist::CellType& cell = c.library().cell(node.cell);
    const double mu = cell.t_int + cell.c * load_of(node) / speed[i];
    delay[i] = NormalRV::from_sigma(mu, sm.sigma(mu));
    arrival[i] = stat::add(u, delay[i]);
  }
  const std::vector<NodeId>& outs = c.outputs();
  std::vector<stat::ClarkGrad> out_steps(outs.size() - 1);
  NormalRV tmax = arrival[static_cast<std::size_t>(outs[0])];
  for (std::size_t k = 1; k < outs.size(); ++k) {
    tmax = stat::clark_max_grad(tmax, arrival[static_cast<std::size_t>(outs[k])],
                                out_steps[k - 1]);
  }

  grad.assign(n, 0.0);
  std::vector<double> amu(n, 0.0);
  std::vector<double> avar(n, 0.0);
  double acc_mu = 1.0;  // seed: d(tmax.mu)
  double acc_var = 0.0;
  for (std::size_t k = outs.size(); k-- > 1;) {
    const stat::ClarkGrad& g = out_steps[k - 1];
    const std::size_t o = static_cast<std::size_t>(outs[k]);
    amu[o] += acc_mu * g.dmu[1] + acc_var * g.dvar[1];
    avar[o] += acc_mu * g.dmu[3] + acc_var * g.dvar[3];
    const double nm = acc_mu * g.dmu[0] + acc_var * g.dvar[0];
    const double nv = acc_mu * g.dmu[2] + acc_var * g.dvar[2];
    acc_mu = nm;
    acc_var = nv;
  }
  amu[static_cast<std::size_t>(outs[0])] += acc_mu;
  avar[static_cast<std::size_t>(outs[0])] += acc_var;

  const auto& levels = c.gate_levels();
  for (std::size_t l = levels.size(); l-- > 0;) {
    for (NodeId id : levels[l]) {
      const netlist::Node& node = c.node(id);
      const std::size_t i = static_cast<std::size_t>(id);
      const double a_mu = amu[i];
      const double a_var = avar[i];
      if (a_mu == 0.0 && a_var == 0.0) continue;
      const double sigma_t = sm.kappa * delay[i].mu + sm.offset;
      const double adj_mu_t = a_mu + a_var * 2.0 * sm.kappa * sigma_t;
      const netlist::CellType& cell = c.library().cell(node.cell);
      const double s_own = speed[i];
      grad[i] += adj_mu_t * (-cell.c * load_of(node) / (s_own * s_own));
      for (NodeId fo : node.fanouts) {
        grad[static_cast<std::size_t>(fo)] +=
            adj_mu_t * cell.c * c.library().cell(c.node(fo).cell).c_in / s_own;
      }
      double am = a_mu;
      double av = a_var;
      for (std::size_t k = node.fanins.size(); k-- > 1;) {
        const stat::ClarkGrad& g = steps[i][k - 1];
        const std::size_t f = static_cast<std::size_t>(node.fanins[k]);
        amu[f] += am * g.dmu[1] + av * g.dvar[1];
        avar[f] += am * g.dmu[3] + av * g.dvar[3];
        const double nm = am * g.dmu[0] + av * g.dvar[0];
        const double nv = am * g.dmu[2] + av * g.dvar[2];
        am = nm;
        av = nv;
      }
      amu[static_cast<std::size_t>(node.fanins[0])] += am;
      avar[static_cast<std::size_t>(node.fanins[0])] += av;
    }
  }
  return tmax;
}

class TimingViewEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(TimingViewEquivalence, AllSweepsMatchTheNodeWalkAtEveryJobCount) {
  JobsGuard guard;
  // 220 gates > the 192-gate parallel cutoff, so --jobs 4 runs the
  // level-parallel SSTA/adjoint paths, not the serial fallback.
  const Circuit c = random_circuit(GetParam(), 220);
  const ssta::SigmaModel sm{0.25, 0.02};
  const ssta::DelayCalculator calc(c, sm);
  std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()));
  for (std::size_t i = 0; i < speed.size(); ++i) {
    speed[i] = 1.0 + 0.21 * static_cast<double>((i * 7 + GetParam()) % 9);
  }
  const std::vector<NormalRV> delays = calc.all_delays(speed);

  NormalRV ref_total;
  const std::vector<NormalRV> ref_arr = ref_ssta(c, delays, &ref_total);
  double ref_sta_total = 0.0;
  const std::vector<double> ref_sta_arr = ref_sta_worst(c, delays, &ref_sta_total);
  ssta::MonteCarloOptions mc_opt;
  mc_opt.num_samples = 1500;  // spans several 256-trial chunks
  mc_opt.seed = static_cast<std::uint64_t>(GetParam()) * 1000003 + 17;
  double ref_mean = 0.0;
  double ref_stddev = 0.0;
  const std::vector<double> ref_samples =
      ref_monte_carlo(c, delays, mc_opt, &ref_mean, &ref_stddev);
  std::vector<double> ref_grad;
  const NormalRV ref_tmax = ref_reduced_grad(c, sm, speed, ref_grad);

  const core::ReducedEvaluator eval(c, sm);
  for (int jobs : {1, 4}) {
    SCOPED_TRACE("jobs = " + std::to_string(jobs));
    runtime::set_threads(jobs);

    const ssta::TimingReport r = ssta::run_ssta(c, delays);
    EXPECT_EQ(r.circuit_delay.mu, ref_total.mu);
    EXPECT_EQ(r.circuit_delay.var, ref_total.var);
    ASSERT_EQ(r.arrival.size(), ref_arr.size());
    for (std::size_t i = 0; i < ref_arr.size(); ++i) {
      ASSERT_EQ(r.arrival[i].mu, ref_arr[i].mu) << "node " << i;
      ASSERT_EQ(r.arrival[i].var, ref_arr[i].var) << "node " << i;
    }

    const ssta::StaReport sta = ssta::run_sta(c, delays, ssta::Corner::kWorst);
    EXPECT_EQ(sta.circuit_delay, ref_sta_total);
    for (std::size_t i = 0; i < ref_sta_arr.size(); ++i) {
      ASSERT_EQ(sta.arrival[i], ref_sta_arr[i]) << "node " << i;
    }

    const ssta::MonteCarloResult mc = ssta::run_monte_carlo(c, delays, mc_opt);
    EXPECT_EQ(mc.mean, ref_mean);
    EXPECT_EQ(mc.stddev, ref_stddev);
    ASSERT_EQ(mc.samples.size(), ref_samples.size());
    for (std::size_t i = 0; i < ref_samples.size(); ++i) {
      ASSERT_EQ(mc.samples[i], ref_samples[i]) << "sample " << i;
    }

    std::vector<double> grad;
    const NormalRV tmax = eval.eval_with_grad(speed, 1.0, 0.0, grad);
    EXPECT_EQ(tmax.mu, ref_tmax.mu);
    EXPECT_EQ(tmax.var, ref_tmax.var);
    ASSERT_EQ(grad.size(), ref_grad.size());
    for (std::size_t i = 0; i < ref_grad.size(); ++i) {
      ASSERT_EQ(grad[i], ref_grad[i]) << "node " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingViewEquivalence, ::testing::Range(1, 5));

}  // namespace
}  // namespace statsize
