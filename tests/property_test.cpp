// Cross-cutting randomized property tests: invariants that must hold for any
// circuit and any parameters, exercised over seeds with parameterized gtest.

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "core/sizer.h"
#include "netlist/generators.h"
#include "ssta/canonical.h"
#include "ssta/monte_carlo.h"
#include "ssta/ssta.h"
#include "stat/clark.h"

namespace statsize {
namespace {

using netlist::Circuit;
using netlist::NodeId;
using netlist::NodeKind;
using stat::NormalRV;

Circuit random_circuit(int seed, int gates = 80) {
  netlist::RandomDagParams p;
  p.num_gates = gates;
  p.num_inputs = 12 + seed % 17;
  p.seed = static_cast<std::uint64_t>(seed) * 7919 + 3;
  return make_random_dag(p);
}

class CircuitProperties : public ::testing::TestWithParam<int> {};

TEST_P(CircuitProperties, ArrivalDominatesEveryFanin) {
  // mu of a gate's arrival >= mu of each fanin arrival (max + positive delay).
  const Circuit c = random_circuit(GetParam());
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.5);
  const ssta::TimingReport r = ssta::run_ssta(c, calc.all_delays(speed));
  for (NodeId id : c.topo_order()) {
    const netlist::Node& n = c.node(id);
    if (n.kind != NodeKind::kGate) continue;
    for (NodeId f : n.fanins) {
      ASSERT_GE(r.arrival[static_cast<std::size_t>(id)].mu,
                r.arrival[static_cast<std::size_t>(f)].mu - 1e-12);
    }
  }
}

TEST_P(CircuitProperties, SlowingAnyGateNeverSpeedsTheCircuitMuchBeyondApproximation) {
  // The TRUE statistical circuit delay is monotone in every gate-delay mean.
  // The Clark moment-matching chain is *almost* monotone: raising one
  // operand's mean can shrink a downstream max's matched variance (dominance
  // narrows the mixture), which shrinks the next max's theta*phi mean bump —
  // a second-order approximation artifact, observed at the 1e-3..1e-2 level.
  // We pin exactly that: increases are unbounded, decreases must stay within
  // the approximation noise.
  const Circuit c = random_circuit(GetParam(), 50);
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.5);
  auto delays = calc.all_delays(speed);
  const double base = ssta::run_ssta(c, delays).circuit_delay.mu;

  int checked = 0;
  for (NodeId id : c.topo_order()) {
    if (c.node(id).kind != NodeKind::kGate) continue;
    if (++checked % 5 != 0) continue;
    const NormalRV saved = delays[static_cast<std::size_t>(id)];
    delays[static_cast<std::size_t>(id)].mu += 0.5;
    const double slowed = ssta::run_ssta(c, delays).circuit_delay.mu;
    delays[static_cast<std::size_t>(id)] = saved;
    ASSERT_GE(slowed, base - 0.02) << "gate " << id;
  }

  // With zero sigmas the chain degenerates to the deterministic max, where
  // monotonicity is exact.
  const ssta::DelayCalculator det(c, {0.0, 0.0});
  auto det_delays = det.all_delays(speed);
  const double det_base = ssta::run_ssta(c, det_delays).circuit_delay.mu;
  checked = 0;
  for (NodeId id : c.topo_order()) {
    if (c.node(id).kind != NodeKind::kGate) continue;
    if (++checked % 7 != 0) continue;
    const NormalRV saved = det_delays[static_cast<std::size_t>(id)];
    det_delays[static_cast<std::size_t>(id)].mu += 0.5;
    const double slowed = ssta::run_ssta(c, det_delays).circuit_delay.mu;
    det_delays[static_cast<std::size_t>(id)] = saved;
    ASSERT_GE(slowed, det_base - 1e-12) << "gate " << id;
  }
}

TEST_P(CircuitProperties, MonteCarloYieldIsMonotoneInDeadline) {
  const Circuit c = random_circuit(GetParam(), 40);
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  ssta::MonteCarloOptions opt;
  opt.num_samples = 4000;
  opt.seed = static_cast<std::uint64_t>(GetParam());
  const ssta::MonteCarloResult mc = ssta::run_monte_carlo(c, calc.all_delays(speed), opt);
  double prev = -1.0;
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double d = mc.quantile(q);
    const double y = mc.yield(d);
    ASSERT_GE(y, prev);
    ASSERT_NEAR(y, q, 0.03);
    prev = y;
  }
}

TEST_P(CircuitProperties, CorrelationNeverIncreasesTheMeanOfTheMax) {
  // Positive path correlation makes the true E[max] smaller than the
  // independence estimate; the canonical engine must sit at or below it.
  const Circuit c = random_circuit(GetParam());
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const auto delays = calc.all_delays(speed);
  const double ind = ssta::run_ssta(c, delays).circuit_delay.mu;
  const double can = ssta::run_canonical_ssta(c, delays).circuit_delay.mean();
  ASSERT_LE(can, ind + 1e-9);
}

TEST_P(CircuitProperties, TighterDeadlineNeverNeedsLessArea) {
  const Circuit c = random_circuit(GetParam(), 40);
  core::SizingSpec spec;
  spec.objective = core::Objective::min_area();
  const ssta::DelayCalculator calc(c, spec.sigma_model);
  std::vector<double> s(static_cast<std::size_t>(c.num_nodes()), spec.max_speed);
  const double lo = ssta::run_ssta(calc, s).circuit_delay.mu;
  std::fill(s.begin(), s.end(), 1.0);
  const double hi = ssta::run_ssta(calc, s).circuit_delay.mu;

  core::SizerOptions opt;
  opt.method = core::Method::kReducedSpace;
  double prev_area = 1e100;
  for (double frac : {0.25, 0.5, 0.75}) {  // tightest first
    spec.delay_constraint = core::DelayConstraint::at_most(lo + frac * (hi - lo));
    const core::SizingResult r = core::Sizer(c, spec).run(opt);
    ASSERT_TRUE(r.converged) << r.status;
    ASSERT_LE(r.sum_speed, prev_area + 0.01 * prev_area);
    prev_area = r.sum_speed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircuitProperties, ::testing::Range(1, 7));

// --- clark_min statistical validation -------------------------------------

class ClarkMinVsMc : public ::testing::TestWithParam<int> {};

TEST_P(ClarkMinVsMc, MomentsMatchSampling) {
  std::mt19937_64 rng(GetParam() * 101 + 7);
  std::uniform_real_distribution<double> mu_d(-3.0, 3.0);
  std::uniform_real_distribution<double> s_d(0.2, 2.0);
  const NormalRV a = NormalRV::from_sigma(mu_d(rng), s_d(rng));
  const NormalRV b = NormalRV::from_sigma(mu_d(rng), s_d(rng));
  const NormalRV c = stat::clark_min(a, b);

  std::normal_distribution<double> da(a.mu, a.sigma());
  std::normal_distribution<double> db(b.mu, b.sigma());
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double m = std::min(da(rng), db(rng));
    sum += m;
    sum2 += m * m;
  }
  const double mc_mu = sum / n;
  const double mc_var = sum2 / n - mc_mu * mc_mu;
  EXPECT_NEAR(c.mu, mc_mu, 0.02);
  EXPECT_NEAR(c.var, mc_var, 0.05);
  EXPECT_LE(c.mu, std::min(a.mu, b.mu) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClarkMinVsMc, ::testing::Range(0, 8));

}  // namespace
}  // namespace statsize
