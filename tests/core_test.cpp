// Unit tests for the sizing core: the Clark NLP elements, the full-space
// formulation builder (structure, feasible start, derivative consistency),
// and the reduced-space adjoint evaluator.

#include "core/clark_element.h"
#include "core/full_space.h"
#include "core/reduced_space.h"
#include "core/spec.h"

#include "netlist/generators.h"
#include "nlp/derivative_check.h"
#include "ssta/ssta.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace statsize::core {
namespace {

using netlist::Circuit;
using netlist::NodeId;
using netlist::NodeKind;
using stat::NormalRV;

TEST(ClarkElementTest, AllLiveMatchesClarkMax) {
  ClarkElement mu_el(ClarkElement::Output::kMu);
  ClarkElement var_el(ClarkElement::Output::kVar);
  ASSERT_EQ(mu_el.arity(), 4);
  const double x[4] = {1.0, 2.0, 0.5, 1.5};  // muA muB vA vB
  const NormalRV want = stat::clark_max({1.0, 0.5}, {2.0, 1.5});
  EXPECT_DOUBLE_EQ(mu_el.eval(x, nullptr, nullptr), want.mu);
  EXPECT_DOUBLE_EQ(var_el.eval(x, nullptr, nullptr), want.var);
}

TEST(ClarkElementTest, GradientMatchesClarkGrad) {
  ClarkElement mu_el(ClarkElement::Output::kMu);
  const double x[4] = {1.0, 2.0, 0.5, 1.5};
  double g[4];
  mu_el.eval(x, g, nullptr);
  stat::ClarkGrad cg;
  stat::clark_max_grad({1.0, 0.5}, {2.0, 1.5}, cg);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(g[i], cg.dmu[i]) << i;
}

TEST(ClarkElementTest, FixedOperandReducesArity) {
  // Operand A pinned to the constant (0, 0) — a primary-input arrival.
  ClarkElement el(ClarkElement::Output::kMu,
                  {0.0, ClarkElement::kLive, 0.0, ClarkElement::kLive});
  ASSERT_EQ(el.arity(), 2);
  const double x[2] = {1.5, 0.8};  // muB, varB
  const NormalRV want = stat::clark_max({0.0, 0.0}, {1.5, 0.8});
  EXPECT_DOUBLE_EQ(el.eval(x, nullptr, nullptr), want.mu);

  // Gradient slots must map to (muB, varB).
  double g[2];
  el.eval(x, g, nullptr);
  stat::ClarkGrad cg;
  stat::clark_max_grad({0.0, 0.0}, {1.5, 0.8}, cg);
  EXPECT_DOUBLE_EQ(g[0], cg.dmu[1]);
  EXPECT_DOUBLE_EQ(g[1], cg.dmu[3]);
}

TEST(ClarkElementTest, HessianScattersToLiveSlots) {
  ClarkElement el(ClarkElement::Output::kVar,
                  {ClarkElement::kLive, 3.0, ClarkElement::kLive, 0.25});
  ASSERT_EQ(el.arity(), 2);
  const double x[2] = {2.5, 0.6};  // muA, varA
  double g[2];
  double h[3];
  el.eval(x, g, h);

  stat::ClarkGrad cg;
  stat::ClarkHess ch;
  stat::clark_max_full({2.5, 0.6}, {3.0, 0.25}, cg, ch);
  using D4 = autodiff::Dual2<4>;
  EXPECT_DOUBLE_EQ(h[nlp::packed_index(2, 0, 0)], ch.var[D4::hess_index(0, 0)]);
  EXPECT_DOUBLE_EQ(h[nlp::packed_index(2, 0, 1)], ch.var[D4::hess_index(0, 2)]);
  EXPECT_DOUBLE_EQ(h[nlp::packed_index(2, 1, 1)], ch.var[D4::hess_index(2, 2)]);
}

TEST(Spec, Descriptions) {
  EXPECT_EQ(Objective::min_delay().description(), "min mu");
  EXPECT_EQ(Objective::min_delay(3.0).description(), "min mu+3sigma");
  EXPECT_EQ(Objective::min_area().description(), "min sum(S)");
  EXPECT_EQ(Objective::max_sigma().description(), "max sigma");
  EXPECT_EQ(DelayConstraint::at_most(120, 1.0).description(), "mu+1sigma <= 120");
  EXPECT_EQ(DelayConstraint::exactly(6.5).description(), "mu = 6.5");
}

// ---------------------------------------------------------------------------
// Full-space formulation.
// ---------------------------------------------------------------------------

TEST(FullSpace, TreeFormulationShape) {
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  spec.objective = Objective::min_delay(3.0);
  const FullSpaceFormulation f = build_full_space(c, spec, 1.0);

  // 7 gates x 5 vars + 3 live max pairs x 2 aux = 41 (sigma_Tmax is an
  // expression, not a variable). Gates A,B,D,E take the max of two constant
  // PI arrivals — folded away — so only C, F, G contribute live max pairs.
  EXPECT_EQ(f.num_max_pairs, 3);
  EXPECT_EQ(f.problem->num_vars(), 7 * 5 + 3 * 2);
  // Per gate: delay + sigma-model + 2 arrival constraints = 28; per max pair
  // 2 constraints = 6.
  EXPECT_EQ(f.problem->num_constraints(), 28 + 6);
}

TEST(FullSpace, StartIsFeasible) {
  // The builder propagates start values, so every equality holds at start.
  for (double s0 : {1.0, 2.0, 3.0}) {
    const Circuit c = netlist::make_tree_circuit();
    SizingSpec spec;
    spec.objective = Objective::min_delay(1.0);
    const FullSpaceFormulation f = build_full_space(c, spec, s0);
    EXPECT_LT(f.problem->max_constraint_violation(f.problem->start()), 1e-10) << s0;
  }
}

TEST(FullSpace, StartFeasibleOnIrregularCircuit) {
  const Circuit c = netlist::make_mcnc_like("apex2");
  SizingSpec spec;
  spec.objective = Objective::min_delay(3.0);
  const FullSpaceFormulation f = build_full_space(c, spec, 2.0);
  EXPECT_LT(f.problem->max_constraint_violation(f.problem->start()), 1e-9);
}

TEST(FullSpace, StartMatchesSsta) {
  // mu_Tmax / var_Tmax start values must equal the SSTA circuit delay.
  const Circuit c = netlist::make_mcnc_like("apex2");
  SizingSpec spec;
  spec.objective = Objective::min_delay(0.0);
  const FullSpaceFormulation f = build_full_space(c, spec, 1.0);
  const ssta::DelayCalculator calc(c, spec.sigma_model);
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const NormalRV want = ssta::run_ssta(calc, speed).circuit_delay;
  const std::vector<double>& x0 = f.problem->start();
  EXPECT_NEAR(x0[static_cast<std::size_t>(f.mu_tmax_var)], want.mu, 1e-9);
  EXPECT_NEAR(x0[static_cast<std::size_t>(f.var_tmax_var)], want.var, 1e-9);
}

TEST(FullSpace, AnalyticDerivativesPassFiniteDifferenceCheck) {
  // Random interior point (perturbed from the feasible start) — gradients and
  // element Hessians of the whole formulation must agree with central FD.
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  spec.objective = Objective::min_delay(3.0);
  spec.delay_constraint = DelayConstraint::at_most(9.0, 1.0);
  const FullSpaceFormulation f = build_full_space(c, spec, 1.5);

  std::vector<double> x = f.problem->start();
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> u(-0.05, 0.05);
  for (double& xi : x) xi = std::max(1e-3, xi * (1.0 + u(rng)));

  const nlp::DerivativeReport rep = nlp::check_problem_derivatives(*f.problem, x);
  EXPECT_TRUE(rep.ok(5e-4)) << "grad err " << rep.max_gradient_error << ", hess err "
                            << rep.max_hessian_error;
}

TEST(FullSpace, SpeedsFromExtractsGateVariables) {
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  const FullSpaceFormulation f = build_full_space(c, spec, 1.7);
  const std::vector<double> speeds = f.speeds_from(f.problem->start());
  for (NodeId id : c.topo_order()) {
    if (c.node(id).kind == NodeKind::kGate) {
      EXPECT_DOUBLE_EQ(speeds[static_cast<std::size_t>(id)], 1.7);
    }
  }
}

TEST(FullSpace, EqualityDelayConstraintHasNoSlack) {
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  spec.objective = Objective::min_area();
  spec.delay_constraint = DelayConstraint::exactly(8.0);
  const FullSpaceFormulation feq = build_full_space(c, spec, 2.0);
  spec.delay_constraint = DelayConstraint::at_most(8.0);
  const FullSpaceFormulation fle = build_full_space(c, spec, 2.0);
  EXPECT_EQ(fle.problem->num_vars(), feq.problem->num_vars() + 1);  // the slack
}

// ---------------------------------------------------------------------------
// N-ary max element (future-work mode).
// ---------------------------------------------------------------------------

TEST(NaryClarkElementTest, ValueMatchesPairwiseFold) {
  const NormalRV ops[3] = {{1.0, 0.4}, {1.6, 0.2}, {0.8, 0.9}};
  const NormalRV want = stat::clark_max(stat::clark_max(ops[0], ops[1]), ops[2]);
  NaryClarkElement mu_el(ClarkElement::Output::kMu, 3, false, {});
  NaryClarkElement var_el(ClarkElement::Output::kVar, 3, false, {});
  const double x[6] = {1.0, 1.6, 0.8, 0.4, 0.2, 0.9};  // mus then vars
  EXPECT_NEAR(mu_el.eval(x, nullptr, nullptr), want.mu, 1e-12);
  EXPECT_NEAR(var_el.eval(x, nullptr, nullptr), want.var, 1e-12);
}

TEST(NaryClarkElementTest, ConstInitSeedsFold) {
  const NormalRV init{0.9, 0.0};
  const NormalRV op{1.2, 0.3};
  const NormalRV want = stat::clark_max(init, op);
  NaryClarkElement el(ClarkElement::Output::kMu, 1, true, init);
  const double x[2] = {1.2, 0.3};
  EXPECT_NEAR(el.eval(x, nullptr, nullptr), want.mu, 1e-12);
}

TEST(NaryClarkElementTest, GradientAndHessianMatchFiniteDifferences) {
  NaryClarkElement el(ClarkElement::Output::kVar, 3, true, {0.5, 0.1});
  double x[6] = {1.0, 1.6, 0.8, 0.4, 0.2, 0.9};
  double g[6];
  double h[21];
  const double f0 = el.eval(x, g, h);
  EXPECT_TRUE(std::isfinite(f0));
  for (int i = 0; i < 6; ++i) {
    const double hstep = 1e-6;
    const double saved = x[i];
    x[i] = saved + hstep;
    double gp[6];
    const double fp = el.eval(x, gp, nullptr);
    x[i] = saved - hstep;
    double gm[6];
    const double fm = el.eval(x, gm, nullptr);
    x[i] = saved;
    EXPECT_NEAR(g[i], (fp - fm) / (2 * hstep), 1e-5) << i;
    for (int j = 0; j < 6; ++j) {
      EXPECT_NEAR(h[nlp::packed_index(6, i, j)], (gp[j] - gm[j]) / (2 * hstep), 1e-4)
          << i << "," << j;
    }
  }
}

TEST(NaryClarkElementTest, RejectsTooManyOperands) {
  EXPECT_THROW(NaryClarkElement(ClarkElement::Output::kMu, 5, false, {}),
               std::invalid_argument);
}

TEST(FullSpaceNary, FewerVariablesThanPairwise) {
  // Multi-input cells make the difference visible.
  netlist::RandomDagParams p;
  p.num_gates = 60;
  p.seed = 21;
  const Circuit c = netlist::make_random_dag(p);
  SizingSpec spec;
  spec.objective = Objective::min_delay(3.0);
  const FullSpaceFormulation pairwise = build_full_space(c, spec, 1.0);
  spec.nary_fanin_max = true;
  const FullSpaceFormulation nary = build_full_space(c, spec, 1.0);
  EXPECT_LT(nary.problem->num_vars(), pairwise.problem->num_vars());
  EXPECT_LT(nary.problem->num_constraints(), pairwise.problem->num_constraints());
}

TEST(FullSpaceNary, StartStillFeasibleAndDerivativesCorrect) {
  netlist::RandomDagParams p;
  p.num_gates = 40;
  p.seed = 22;
  const Circuit c = netlist::make_random_dag(p);
  SizingSpec spec;
  spec.objective = Objective::min_delay(1.0);
  spec.nary_fanin_max = true;
  const FullSpaceFormulation f = build_full_space(c, spec, 1.5);
  EXPECT_LT(f.problem->max_constraint_violation(f.problem->start()), 1e-9);

  std::vector<double> x = f.problem->start();
  std::mt19937 rng(4);
  std::uniform_real_distribution<double> u(-0.03, 0.03);
  for (double& xi : x) xi = std::max(1e-3, xi * (1.0 + u(rng)));
  const nlp::DerivativeReport rep = nlp::check_problem_derivatives(*f.problem, x);
  EXPECT_TRUE(rep.ok(5e-4)) << rep.max_gradient_error << " " << rep.max_hessian_error;
}

// ---------------------------------------------------------------------------
// Reduced-space adjoint evaluator.
// ---------------------------------------------------------------------------

struct AdjointCase {
  const char* kind;
  int size;
  double sigma_weight;
};

class AdjointGradient : public ::testing::TestWithParam<AdjointCase> {};

TEST_P(AdjointGradient, MatchesFiniteDifferences) {
  const AdjointCase& p = GetParam();
  Circuit c = [&] {
    if (std::string(p.kind) == "tree") return netlist::make_tree_circuit();
    if (std::string(p.kind) == "chain") return netlist::make_chain(p.size);
    netlist::RandomDagParams rp;
    rp.num_gates = p.size;
    rp.seed = 17;
    return netlist::make_random_dag(rp);
  }();
  const ReducedEvaluator eval(c, {0.25, 0.0});

  std::mt19937 rng(23);
  std::uniform_real_distribution<double> u(1.1, 2.9);
  std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  for (NodeId id : c.topo_order()) {
    if (c.node(id).kind == NodeKind::kGate) speed[static_cast<std::size_t>(id)] = u(rng);
  }

  std::vector<double> grad;
  eval.eval_metric(speed, p.sigma_weight, &grad);

  int checked = 0;
  for (NodeId id : c.topo_order()) {
    if (c.node(id).kind != NodeKind::kGate) continue;
    if (++checked % 3 != 0 && c.num_gates() > 10) continue;  // sample big circuits
    const std::size_t i = static_cast<std::size_t>(id);
    const double h = 1e-6;
    const double s0 = speed[i];
    speed[i] = s0 + h;
    const double fp = eval.eval_metric(speed, p.sigma_weight, nullptr);
    speed[i] = s0 - h;
    const double fm = eval.eval_metric(speed, p.sigma_weight, nullptr);
    speed[i] = s0;
    const double fd = (fp - fm) / (2.0 * h);
    ASSERT_NEAR(grad[i], fd, 1e-5 * (1.0 + std::abs(fd))) << "node " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, AdjointGradient,
                         ::testing::Values(AdjointCase{"tree", 0, 0.0},
                                           AdjointCase{"tree", 0, 3.0},
                                           AdjointCase{"chain", 6, 1.0},
                                           AdjointCase{"dag", 40, 0.0},
                                           AdjointCase{"dag", 40, 3.0},
                                           AdjointCase{"dag", 120, 1.0}));

TEST(ReducedEvaluatorTest, EvalMatchesSsta) {
  const Circuit c = netlist::make_mcnc_like("apex2");
  const ReducedEvaluator eval(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.5);
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const NormalRV via_ssta = ssta::run_ssta(calc, speed).circuit_delay;
  const NormalRV via_eval = eval.eval(speed);
  EXPECT_DOUBLE_EQ(via_eval.mu, via_ssta.mu);
  EXPECT_DOUBLE_EQ(via_eval.var, via_ssta.var);
}

TEST(ReducedEvaluatorTest, GradSeedsAreLinear) {
  // grad(a*mu + b*var) = a*grad(mu) + b*grad(var).
  const Circuit c = netlist::make_tree_circuit();
  const ReducedEvaluator eval(c, {0.25, 0.0});
  std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 2.0);
  std::vector<double> g_mu;
  std::vector<double> g_var;
  std::vector<double> g_mix;
  eval.eval_with_grad(speed, 1.0, 0.0, g_mu);
  eval.eval_with_grad(speed, 0.0, 1.0, g_var);
  eval.eval_with_grad(speed, 2.0, -0.5, g_mix);
  for (std::size_t i = 0; i < g_mix.size(); ++i) {
    EXPECT_NEAR(g_mix[i], 2.0 * g_mu[i] - 0.5 * g_var[i], 1e-12);
  }
}

TEST(ReducedEvaluatorTest, SpeedingUpReducesDelayMetric) {
  // d(mu)/dS summed over all gates must be negative at S=1 (sizing helps).
  const Circuit c = netlist::make_mcnc_like("apex2");
  const ReducedEvaluator eval(c, {0.25, 0.0});
  std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  std::vector<double> grad;
  eval.eval_metric(speed, 0.0, &grad);
  double total = 0.0;
  for (double g : grad) total += g;
  EXPECT_LT(total, 0.0);
}

TEST(ReducedEvaluatorTest, RejectsCircuitWithNoPrimaryOutputs) {
  // Without outputs, Tmax (and the step-slice arithmetic of the adjoint) is
  // undefined; the evaluator must refuse with a named diagnostic instead of
  // underflowing `outs.size() - 1`. A circuit like this cannot survive
  // finalize(), so probe the guard pre-finalize — it sits before any
  // topo-order access.
  const netlist::CellLibrary& lib = netlist::CellLibrary::standard();
  Circuit c(lib);
  const NodeId a = c.add_input("a");
  const NodeId g0 = c.add_gate(lib.find("INV"), {a}, "g0");
  (void)g0;  // never marked as an output
  const ReducedEvaluator eval(c, {0.25, 0.0});
  std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  std::vector<double> grad;
  try {
    eval.eval_with_grad(speed, 1.0, 0.0, grad);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no primary outputs"), std::string::npos) << e.what();
  }
}

TEST(ReducedEvaluatorTest, EvalMetricEqualsProbeSeededAdjoint) {
  // eval_metric seeds the adjoint from the forward sweep's own Tmax instead
  // of running a separate sigma probe. The two must be *equal* (not merely
  // close): clark_max and clark_max_grad share their moment arithmetic, so
  // the in-sweep Tmax is the same double the probe would have produced.
  const Circuit c = netlist::make_mcnc_like("apex2");
  const ReducedEvaluator eval(c, {0.25, 0.0});
  std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.4);
  const double k = 3.0;

  std::vector<double> grad;
  const double metric = eval.eval_metric(speed, k, &grad);

  const NormalRV probe = eval.eval(speed);
  const double sigma = probe.sigma();
  const double seed_var = sigma > 1e-12 ? k / (2.0 * sigma) : 0.0;
  std::vector<double> want_grad;
  const NormalRV t = eval.eval_with_grad(speed, 1.0, seed_var, want_grad);

  EXPECT_EQ(metric, t.mu + k * t.sigma());
  EXPECT_EQ(grad, want_grad);
}

}  // namespace
}  // namespace statsize::core
