// Live-loopback tests of the statsize serve daemon: upload/submit/poll over
// real sockets, bit-identity against in-process SSTA, queue overflow -> 429,
// deadline'd jobs (checkpoint for sizing, cancel for analysis), DELETE on a
// running job, LRU eviction under concurrent readers, stats, and the SIGINT
// interrupt token. The suite runs in the ThreadSanitizer configuration of
// scripts/check.sh, so the scheduler/cache/IO synchronization is part of the
// repo's concurrency surface.

#include <gtest/gtest.h>

#include <csignal>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/sizer.h"
#include "netlist/blif.h"
#include "netlist/generators.h"
#include "netlist/timing_view.h"
#include "runtime/signal.h"
#include "serve/circuit_cache.h"
#include "serve/client.h"
#include "serve/server.h"
#include "ssta/delay_model.h"
#include "ssta/ssta.h"
#include "util/json.h"

namespace {

using namespace statsize;

// ISCAS-85 c17 (6 NAND2) — same text as examples/circuits/c17.blif, embedded
// so the test binary is location-independent.
constexpr const char* kC17 = R"(.model c17
.inputs 1GAT 2GAT 3GAT 6GAT 7GAT
.outputs 22GAT 23GAT
.names 1GAT 3GAT 10GAT
0- 1
-0 1
.names 3GAT 6GAT 11GAT
0- 1
-0 1
.names 2GAT 11GAT 16GAT
0- 1
-0 1
.names 11GAT 7GAT 19GAT
0- 1
-0 1
.names 10GAT 16GAT 22GAT
0- 1
-0 1
.names 16GAT 19GAT 23GAT
0- 1
-0 1
.end
)";

std::string apex1_blif() {
  netlist::Circuit circuit = netlist::make_mcnc_like("apex1");
  std::ostringstream os;
  netlist::write_blif(os, circuit, "apex1");
  return os.str();
}

std::string job_body(const std::string& key, const std::string& type,
                     const std::string& extra = "") {
  std::string body = "{\"circuit\": \"" + key + "\", \"type\": \"" + type + "\"";
  if (!extra.empty()) body += ", " + extra;
  return body + "}";
}

class ServeTest : public ::testing::Test {
 protected:
  void StartServer(serve::ServerOptions options = {}) {
    options.port = 0;
    server_ = std::make_unique<serve::Server>(options);
    server_->start();
    client_ = std::make_unique<serve::Client>("127.0.0.1", server_->port());
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  std::unique_ptr<serve::Server> server_;
  std::unique_ptr<serve::Client> client_;
};

TEST_F(ServeTest, UploadReportsMetadataAndDeduplicates) {
  StartServer();
  serve::ApiResult first = client_->request(
      "POST", "/v1/circuits", "{\"format\": \"blif\", \"name\": \"c17\", \"text\": \"" +
                                  util::JsonWriter::escape(kC17) + "\"}");
  ASSERT_EQ(first.status, 201) << first.body;
  util::JsonValue doc = first.json();
  EXPECT_EQ(doc.string_or("key", "").substr(0, 2), "c-");
  EXPECT_EQ(doc.int_or("gates", 0), 6);
  EXPECT_EQ(doc.int_or("inputs", 0), 5);
  EXPECT_EQ(doc.int_or("outputs", 0), 2);
  EXPECT_FALSE(doc.bool_or("cached", true));

  serve::ApiResult second = client_->request(
      "POST", "/v1/circuits",
      "{\"format\": \"blif\", \"text\": \"" + util::JsonWriter::escape(kC17) + "\"}");
  ASSERT_EQ(second.status, 200) << second.body;
  EXPECT_TRUE(second.json().bool_or("cached", false));
  EXPECT_EQ(second.json().string_or("key", "x"), doc.string_or("key", "y"));
  EXPECT_EQ(server_->metrics().cache_hits.value(), 1);
  EXPECT_EQ(server_->metrics().cache_misses.value(), 1);
}

TEST_F(ServeTest, ServedSstaIsBitIdenticalToInProcess) {
  StartServer();
  const std::string key = client_->upload(kC17, "blif", "c17");
  const std::string id = client_->submit(job_body(key, "ssta"));
  util::JsonValue doc = client_->wait(id);
  ASSERT_EQ(doc.string_or("state", ""), "done") << doc.string_or("error", "");
  const util::JsonValue* result = doc.find("result");
  ASSERT_NE(result, nullptr);

  std::istringstream in(kC17);
  const netlist::Circuit circuit = netlist::read_blif(in);
  const ssta::DelayCalculator calc(circuit, {});
  const std::vector<double> speed(static_cast<std::size_t>(circuit.num_nodes()), 1.0);
  const ssta::TimingReport reference = ssta::run_ssta(calc, speed);

  // %.17g round-trips doubles exactly, so equality here is bit-identity.
  EXPECT_EQ(result->number_or("mu", -1.0), reference.circuit_delay.mu);
  EXPECT_EQ(result->number_or("sigma", -1.0), reference.circuit_delay.sigma());
  EXPECT_EQ(result->number_or("mu_plus_3sigma", -1.0),
            reference.circuit_delay.quantile_offset(3.0));
}

TEST_F(ServeTest, MalformedJsonBodyGets400WithParseLocus) {
  StartServer();
  serve::ApiResult bad =
      client_->request("POST", "/v1/jobs", "{\n  \"circuit\": }");
  EXPECT_EQ(bad.status, 400);
  util::JsonValue doc = bad.json();
  EXPECT_EQ(doc.int_or("line", 0), 2);
  EXPECT_GT(doc.int_or("column", 0), 0);

  serve::ApiResult trailing = client_->request("POST", "/v1/jobs", "{}{}");
  EXPECT_EQ(trailing.status, 400);
  EXPECT_NE(trailing.body.find("trailing"), std::string::npos) << trailing.body;
  EXPECT_GE(server_->metrics().http_bad_requests.value(), 2);
}

TEST_F(ServeTest, UnknownTargetsAndParamsAreRejected) {
  StartServer();
  EXPECT_EQ(client_->request("GET", "/v1/nope").status, 404);
  EXPECT_EQ(client_->request("GET", "/v1/jobs/job-999999").status, 404);
  EXPECT_EQ(client_->request("DELETE", "/v1/jobs/job-999999").status, 404);
  EXPECT_EQ(
      client_->request("POST", "/v1/jobs", job_body("c-0000000000000000", "ssta")).status,
      404);
  const std::string key = client_->upload(kC17, "blif");
  EXPECT_EQ(client_->request("POST", "/v1/jobs", job_body(key, "warp")).status, 400);
  EXPECT_EQ(client_->request("POST", "/v1/circuits",
                             "{\"format\": \"blif\", \"text\": \"not blif at all\"}")
                .status,
            400);
  EXPECT_EQ(client_->request("PUT", "/v1/circuits").status, 405);
}

TEST_F(ServeTest, DeadlinedSizeJobReturnsTimeLimitCheckpoint) {
  StartServer();
  const std::string key = client_->upload(apex1_blif(), "blif", "apex1");
  // A 1 ms budget expires before the reduced-space solve can finish on
  // ~1000 gates; the sizer must come back kDone with its best checkpoint and
  // an honest ".../time-limit" status — never kFailed, never a hang.
  const std::string id = client_->submit(
      job_body(key, "size", "\"method\": \"reduced\", \"deadline_ms\": 1"));
  util::JsonValue doc = client_->wait(id, 0.02, 60.0);
  ASSERT_EQ(doc.string_or("state", ""), "done") << doc.string_or("error", "");
  const util::JsonValue* result = doc.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_NE(result->string_or("status", "").find("time-limit"), std::string::npos)
      << result->string_or("status", "?");
  EXPECT_FALSE(result->bool_or("converged", true));
  // The checkpoint is still a fully scored sizing.
  EXPECT_GT(result->number_or("mu", 0.0), 0.0);
  EXPECT_TRUE(result->bool_or("from_checkpoint", false));
  EXPECT_GE(server_->metrics().jobs_deadline_checkpoints.value(), 1);
}

TEST_F(ServeTest, DeadlinedAnalysisJobIsCancelled) {
  StartServer();
  const std::string key = client_->upload(kC17, "blif");
  const std::string id = client_->submit(job_body(
      key, "monte_carlo", "\"samples\": 200000000, \"deadline_ms\": 30"));
  util::JsonValue doc = client_->wait(id, 0.02, 60.0);
  EXPECT_EQ(doc.string_or("state", ""), "cancelled");
  EXPECT_NE(doc.string_or("error", "").find("deadline"), std::string::npos)
      << doc.string_or("error", "");
}

TEST_F(ServeTest, DeleteCancelsRunningJobWithoutWedgingTheDaemon) {
  StartServer();
  const std::string key = client_->upload(kC17, "blif");
  const std::string id =
      client_->submit(job_body(key, "monte_carlo", "\"samples\": 200000000"));
  // Wait for the executor to pick it up so DELETE exercises the running path.
  for (int i = 0; i < 500; ++i) {
    if (client_->job(id).json().string_or("state", "") == "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  serve::ApiResult del = client_->cancel(id);
  EXPECT_EQ(del.status, 200) << del.body;
  util::JsonValue doc = client_->wait(id, 0.02, 60.0);
  EXPECT_EQ(doc.string_or("state", ""), "cancelled");

  // The daemon must still serve: health plus a fresh job end to end.
  EXPECT_EQ(client_->request("GET", "/v1/healthz").status, 200);
  const std::string id2 = client_->submit(job_body(key, "ssta"));
  EXPECT_EQ(client_->wait(id2, 0.02, 60.0).string_or("state", ""), "done");
}

TEST_F(ServeTest, QueueOverflowAnswers429) {
  serve::ServerOptions options;
  options.scheduler.queue_depth = 1;
  StartServer(options);
  const std::string key = client_->upload(kC17, "blif");
  // Occupy the executor with a long Monte Carlo run...
  const std::string running =
      client_->submit(job_body(key, "monte_carlo", "\"samples\": 200000000"));
  for (int i = 0; i < 500; ++i) {
    if (client_->job(running).json().string_or("state", "") == "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // ...fill the one queue slot...
  const std::string queued = client_->submit(job_body(key, "ssta"));
  // ...and the next submission must bounce with 429 + Retry-After.
  serve::ApiResult overflow = client_->request("POST", "/v1/jobs", job_body(key, "ssta"));
  EXPECT_EQ(overflow.status, 429) << overflow.body;
  EXPECT_GE(server_->metrics().jobs_rejected.value(), 1);

  EXPECT_EQ(client_->cancel(running).status, 200);
  EXPECT_EQ(client_->wait(running, 0.02, 60.0).string_or("state", ""), "cancelled");
  EXPECT_EQ(client_->wait(queued, 0.02, 60.0).string_or("state", ""), "done");
}

TEST_F(ServeTest, ConcurrentSubmitPollReturnsIdenticalResults) {
  StartServer();
  const std::string key = client_->upload(kC17, "blif");
  constexpr int kClients = 4;
  std::vector<double> mus(kClients, -1.0);
  std::vector<std::string> states(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      serve::Client c("127.0.0.1", server_->port());
      const std::string id = c.submit(job_body(key, "ssta"));
      util::JsonValue doc = c.wait(id, 0.01, 60.0);
      states[static_cast<std::size_t>(i)] = doc.string_or("state", "");
      if (const util::JsonValue* r = doc.find("result")) {
        mus[static_cast<std::size_t>(i)] = r->number_or("mu", -1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(states[static_cast<std::size_t>(i)], "done");
    EXPECT_EQ(mus[static_cast<std::size_t>(i)], mus[0]);
  }
  EXPECT_GT(mus[0], 0.0);
}

TEST_F(ServeTest, StatsEndpointReportsCountersAndLatencies) {
  StartServer();
  const std::string key = client_->upload(kC17, "blif");
  const std::string id = client_->submit(job_body(key, "ssta"));
  client_->wait(id, 0.01, 60.0);
  util::JsonValue stats = client_->stats().json();
  const util::JsonValue* http = stats.find("http");
  ASSERT_NE(http, nullptr);
  EXPECT_GE(http->int_or("requests", 0), 3);
  const util::JsonValue* jobs = stats.find("jobs");
  ASSERT_NE(jobs, nullptr);
  EXPECT_GE(jobs->int_or("submitted", 0), 1);
  EXPECT_GE(jobs->int_or("completed", 0), 1);
  const util::JsonValue* latency = stats.find("latency");
  ASSERT_NE(latency, nullptr);
  const util::JsonValue* service = latency->find("service_ms");
  ASSERT_NE(service, nullptr);
  EXPECT_GE(service->int_or("count", 0), 1);
  EXPECT_GE(service->number_or("p99_ms", -1.0), service->number_or("p50_ms", 0.0));
}

TEST_F(ServeTest, StopCancelsQueuedAndRunningJobs) {
  StartServer();
  const std::string key = client_->upload(kC17, "blif");
  const std::string running =
      client_->submit(job_body(key, "monte_carlo", "\"samples\": 200000000"));
  const std::string queued = client_->submit(job_body(key, "ssta"));
  for (int i = 0; i < 500; ++i) {
    if (client_->job(running).json().string_or("state", "") == "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server_->stop();
  const auto r = server_->scheduler().get(running);
  const auto q = server_->scheduler().get(queued);
  ASSERT_NE(r, nullptr);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(r->state.load(), serve::JobState::kCancelled);
  EXPECT_EQ(q->state.load(), serve::JobState::kCancelled);
}

// ---------------------------------------------------------------------------
// Batched job submission (POST /v1/jobs with a JSON array)
// ---------------------------------------------------------------------------

TEST_F(ServeTest, BatchSubmitQueuesAllJobsInOrder) {
  StartServer();
  const std::string key = client_->upload(kC17, "blif", "c17");
  serve::ApiResult batch = client_->request(
      "POST", "/v1/jobs",
      "[" + job_body(key, "ssta") + ", " + job_body(key, "sta") + ", " +
          job_body(key, "monte_carlo", "\"samples\": 100") + "]");
  ASSERT_EQ(batch.status, 202) << batch.body;
  const util::JsonValue doc = batch.json();
  const util::JsonValue* jobs = doc.find("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_EQ(jobs->items().size(), 3u);
  const char* types[] = {"ssta", "sta", "monte_carlo"};
  std::string prev_id;
  for (std::size_t i = 0; i < 3; ++i) {
    const util::JsonValue& j = jobs->items()[i];
    EXPECT_EQ(j.string_or("type", ""), types[i]);
    EXPECT_EQ(j.string_or("circuit", ""), key);
    const std::string id = j.string_or("id", "");
    ASSERT_EQ(id.substr(0, 4), "job-");
    EXPECT_GT(id, prev_id);  // "job-%06d": lexicographic == submission order
    prev_id = id;
    EXPECT_EQ(client_->wait(id, 0.01, 60.0).string_or("state", ""), "done");
  }
  EXPECT_EQ(server_->metrics().jobs_submitted.value(), 3);
}

TEST_F(ServeTest, BatchSubmitRejectsWholeBatchOnOneBadElement) {
  StartServer();
  const std::string key = client_->upload(kC17, "blif");
  serve::ApiResult bad_type = client_->request(
      "POST", "/v1/jobs", "[" + job_body(key, "ssta") + ", " + job_body(key, "warp") + "]");
  EXPECT_EQ(bad_type.status, 400);
  EXPECT_NE(bad_type.body.find("jobs[1]"), std::string::npos) << bad_type.body;

  serve::ApiResult bad_key = client_->request(
      "POST", "/v1/jobs", "[" + job_body("c-0000000000000000", "ssta") + "]");
  EXPECT_EQ(bad_key.status, 404);
  EXPECT_NE(bad_key.body.find("jobs[0]"), std::string::npos) << bad_key.body;

  EXPECT_EQ(client_->request("POST", "/v1/jobs", "[]").status, 400);
  // A rejected batch queues nothing.
  EXPECT_EQ(server_->metrics().jobs_submitted.value(), 0);
}

TEST_F(ServeTest, BatchSubmitIsAllOrNothingOnQueueOverflow) {
  serve::ServerOptions options;
  options.scheduler.queue_depth = 2;
  StartServer(options);
  const std::string key = client_->upload(kC17, "blif");
  // Occupy the executor so queued jobs stay queued.
  const std::string running =
      client_->submit(job_body(key, "monte_carlo", "\"samples\": 200000000"));
  for (int i = 0; i < 500; ++i) {
    if (client_->job(running).json().string_or("state", "") == "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Three jobs cannot fit the two queue slots: the whole batch bounces and
  // none of it is queued.
  const std::string batch3 = "[" + job_body(key, "ssta") + ", " + job_body(key, "ssta") +
                             ", " + job_body(key, "ssta") + "]";
  serve::ApiResult overflow = client_->request("POST", "/v1/jobs", batch3);
  EXPECT_EQ(overflow.status, 429) << overflow.body;
  EXPECT_GE(server_->metrics().jobs_rejected.value(), 3);

  // A batch that fits is accepted whole.
  serve::ApiResult ok = client_->request(
      "POST", "/v1/jobs", "[" + job_body(key, "ssta") + ", " + job_body(key, "sta") + "]");
  ASSERT_EQ(ok.status, 202) << ok.body;
  const util::JsonValue ok_doc = ok.json();
  const util::JsonValue* accepted = ok_doc.find("jobs");
  ASSERT_NE(accepted, nullptr);
  ASSERT_EQ(accepted->items().size(), 2u);

  EXPECT_EQ(client_->cancel(running).status, 200);
  for (const util::JsonValue& j : accepted->items()) {
    EXPECT_EQ(client_->wait(j.string_or("id", ""), 0.02, 60.0).string_or("state", ""),
              "done");
  }
}

// ---------------------------------------------------------------------------
// PATCH /v1/circuits/<key>: ECO edits -> derived cache entries
// ---------------------------------------------------------------------------

/// First two gate NodeIds of the in-process parse of `kC17` (ids are stable:
/// the daemon parses the same text with the same reader).
std::pair<netlist::NodeId, netlist::NodeId> c17_gates() {
  std::istringstream in(kC17);
  const netlist::Circuit circuit = netlist::read_blif(in);
  const std::vector<netlist::NodeId>& gates = circuit.view().gates_in_topo_order();
  return {gates[0], gates[1]};
}

TEST_F(ServeTest, PatchValidatesAndCreatesDerivedEntry) {
  StartServer();
  const std::string key = client_->upload(kC17, "blif", "c17");
  const auto [g0, g1] = c17_gates();

  EXPECT_EQ(client_->request("PATCH", "/v1/circuits/c-0000000000000000",
                             "{\"edits\": [{\"node\": 5, \"t_int\": 2.0}]}")
                .status,
            404);
  EXPECT_EQ(client_->request("PATCH", "/v1/circuits/" + key, "{}").status, 400);
  EXPECT_EQ(client_->request("PATCH", "/v1/circuits/" + key, "{\"edits\": []}").status, 400);
  // Node 0 is a primary input, not a gate.
  EXPECT_EQ(client_->request("PATCH", "/v1/circuits/" + key,
                             "{\"edits\": [{\"node\": 0, \"t_int\": 2.0}]}")
                .status,
            400);
  EXPECT_EQ(client_->request("PATCH", "/v1/circuits/" + key,
                             "{\"edits\": [{\"node\": " + std::to_string(g0) +
                                 ", \"speed\": -1.0}]}")
                .status,
            400);
  EXPECT_EQ(client_->request("PATCH", "/v1/circuits/" + key,
                             "{\"edits\": [{\"node\": " + std::to_string(g0) +
                                 ", \"t_int\": \"fast\"}]}")
                .status,
            400);
  EXPECT_EQ(client_->request("PATCH", "/v1/circuits/" + key,
                             "{\"edits\": [{\"node\": " + std::to_string(g0) + "}]}")
                .status,
            400);

  const std::string edit = "{\"edits\": [{\"node\": " + std::to_string(g0) +
                           ", \"t_int\": 2.5}]}";
  serve::ApiResult created = client_->request("PATCH", "/v1/circuits/" + key, edit);
  ASSERT_EQ(created.status, 201) << created.body;
  const util::JsonValue doc = created.json();
  const std::string derived = doc.string_or("key", "");
  EXPECT_EQ(derived.substr(0, key.size() + 3), key + "+e-");
  EXPECT_EQ(derived.size(), key.size() + 3 + 16);  // "+e-" + 64-bit hex hash
  EXPECT_EQ(doc.string_or("base", ""), key);
  EXPECT_FALSE(doc.bool_or("cached", true));
  EXPECT_EQ(doc.int_or("num_edits", 0), 1);

  // Same edit body -> same derived key, served from cache.
  serve::ApiResult again = client_->request("PATCH", "/v1/circuits/" + key, edit);
  ASSERT_EQ(again.status, 200) << again.body;
  EXPECT_TRUE(again.json().bool_or("cached", false));
  EXPECT_EQ(again.json().string_or("key", ""), derived);

  // A different edit value derives a different key.
  serve::ApiResult other = client_->request(
      "PATCH", "/v1/circuits/" + key,
      "{\"edits\": [{\"node\": " + std::to_string(g1) + ", \"t_int\": 2.5}]}");
  ASSERT_EQ(other.status, 201) << other.body;
  EXPECT_NE(other.json().string_or("key", ""), derived);
}

TEST_F(ServeTest, AnalysisOnPatchedCircuitIsBitIdenticalToInProcessEdit) {
  StartServer();
  const std::string key = client_->upload(kC17, "blif");
  const auto [g0, g1] = c17_gates();

  serve::ApiResult patched = client_->request(
      "PATCH", "/v1/circuits/" + key,
      "{\"edits\": [{\"node\": " + std::to_string(g0) +
          ", \"t_int\": 2.5, \"c_in\": 0.4}, {\"node\": " + std::to_string(g1) +
          ", \"speed\": 1.5}]}");
  ASSERT_EQ(patched.status, 201) << patched.body;
  const std::string derived = patched.json().string_or("key", "");

  const std::string id = client_->submit(job_body(derived, "ssta"));
  util::JsonValue doc = client_->wait(id, 0.01, 60.0);
  ASSERT_EQ(doc.string_or("state", ""), "done") << doc.string_or("error", "");
  const util::JsonValue* result = doc.find("result");
  ASSERT_NE(result, nullptr);

  // The same ECO applied in process: params edit on a view copy, speed edit
  // as a per-node override of the uniform analysis speed.
  std::istringstream in(kC17);
  const netlist::Circuit circuit = netlist::read_blif(in);
  netlist::TimingView view = circuit.view();
  netlist::NodeParams p = view.node_params(g0);
  p.t_int = 2.5;
  p.c_in = 0.4;
  view.update_node_params(g0, p);
  std::vector<double> speed(static_cast<std::size_t>(view.num_nodes()), 1.0);
  speed[static_cast<std::size_t>(g1)] = 1.5;
  const ssta::DelayCalculator calc(view, {});
  const ssta::TimingReport reference = ssta::run_ssta(view, calc.all_delays(speed));

  EXPECT_EQ(result->number_or("mu", -1.0), reference.circuit_delay.mu);
  EXPECT_EQ(result->number_or("sigma", -1.0), reference.circuit_delay.sigma());
}

TEST_F(ServeTest, PatchedSizeOverHttpMatchesInProcessWarmResize) {
  StartServer();
  const std::string key = client_->upload(kC17, "blif");
  const auto [g0, g1] = c17_gates();
  (void)g1;

  // Base solve: cold (nothing to warm-start from), and it memoizes its warm
  // state on the cache entry.
  const std::string base_id =
      client_->submit(job_body(key, "size", "\"method\": \"reduced\""));
  util::JsonValue base_doc = client_->wait(base_id, 0.01, 120.0);
  ASSERT_EQ(base_doc.string_or("state", ""), "done") << base_doc.string_or("error", "");
  const util::JsonValue* base_result = base_doc.find("result");
  ASSERT_NE(base_result, nullptr);
  EXPECT_FALSE(base_result->bool_or("warm_started", true));
  EXPECT_GE(base_result->int_or("outer_iterations", 0), 1);

  serve::ApiResult patched = client_->request(
      "PATCH", "/v1/circuits/" + key,
      "{\"edits\": [{\"node\": " + std::to_string(g0) + ", \"t_int\": 1.8}]}");
  ASSERT_EQ(patched.status, 201) << patched.body;
  const std::string derived = patched.json().string_or("key", "");

  // Derived solve: warm-started from the base entry's memoized result.
  const std::string warm_id =
      client_->submit(job_body(derived, "size", "\"method\": \"reduced\""));
  util::JsonValue warm_doc = client_->wait(warm_id, 0.01, 120.0);
  ASSERT_EQ(warm_doc.string_or("state", ""), "done") << warm_doc.string_or("error", "");
  const util::JsonValue* warm_result = warm_doc.find("result");
  ASSERT_NE(warm_result, nullptr);
  EXPECT_TRUE(warm_result->bool_or("warm_started", false));

  // Full-space sizing cannot run on a patched entry (the NLP is built from
  // the immutable Circuit) — the job fails with a routing hint, not silently
  // wrong numbers.
  const std::string full_id =
      client_->submit(job_body(derived, "size", "\"method\": \"full\""));
  util::JsonValue full_doc = client_->wait(full_id, 0.01, 60.0);
  EXPECT_EQ(full_doc.string_or("state", ""), "failed");
  EXPECT_NE(full_doc.string_or("error", "").find("reduced"), std::string::npos);

  // In-process mirror of the daemon's exact pipeline (JobParams defaults:
  // min-delay objective with sigma weight 3, max_speed 3, default sigma
  // model): cold base solve, then resize on the edited view warm-started
  // from the base result.
  std::istringstream in(kC17);
  const netlist::Circuit circuit = netlist::read_blif(in);
  core::SizingSpec spec;
  spec.objective = core::Objective::min_delay(3.0);
  spec.max_speed = 3.0;
  core::SizerOptions opt;
  opt.method = core::Method::kReducedSpace;
  const core::SizingResult base_ref = core::Sizer(circuit, spec).run(opt);

  netlist::TimingView view = circuit.view();
  netlist::NodeParams p = view.node_params(g0);
  p.t_int = 1.8;
  view.update_node_params(g0, p);
  const core::SizingResult warm_ref =
      core::Sizer(view, spec).resize(opt, base_ref.warm);

  // %.17g round-trips doubles exactly: the sizes served over HTTP must be
  // the bits the in-process warm path computes.
  const util::JsonValue* served_speed = warm_result->find("speed");
  ASSERT_NE(served_speed, nullptr);
  ASSERT_EQ(served_speed->items().size(), warm_ref.speed.size());
  for (std::size_t i = 0; i < warm_ref.speed.size(); ++i) {
    EXPECT_EQ(served_speed->items()[i].as_number(), warm_ref.speed[i]) << "node " << i;
  }
  EXPECT_EQ(warm_result->number_or("mu", -1.0), warm_ref.circuit_delay.mu);
  EXPECT_EQ(warm_result->int_or("outer_iterations", -1), warm_ref.outer_iterations);
}

// ---------------------------------------------------------------------------
// Liveness vs readiness during the drain window
// ---------------------------------------------------------------------------

TEST_F(ServeTest, ReadyzFlipsDuringDrainWhileHealthzStaysLive) {
  StartServer();
  EXPECT_EQ(client_->request("GET", "/v1/healthz").status, 200);
  serve::ApiResult ready = client_->request("GET", "/v1/readyz");
  EXPECT_EQ(ready.status, 200) << ready.body;
  EXPECT_TRUE(ready.json().bool_or("ready", false));

  // The CLI's signal path calls begin_drain() ahead of stop(): readiness
  // flips so load balancers stop routing, liveness must NOT (a restart here
  // would cut the very drain we are advertising).
  server_->begin_drain();
  EXPECT_EQ(client_->request("GET", "/v1/healthz").status, 200);
  EXPECT_EQ(client_->request("GET", "/v1/readyz").status, 503);

  // Work already in the building still completes during the window.
  const std::string key = client_->upload(kC17, "blif", "c17");
  const std::string id = client_->submit(job_body(key, "ssta"));
  EXPECT_EQ(client_->wait(id).string_or("state", ""), "done");

  // Retry-After rides the 503 so clients back off politely (handle() is the
  // socket-free dispatch path; ApiResult does not expose headers).
  serve::HttpRequest request;
  request.method = "GET";
  request.target = "/v1/readyz";
  serve::HttpResponse response = server_->handle(request);
  EXPECT_EQ(response.status, 503);
  EXPECT_FALSE(response.headers["Retry-After"].empty());
}

// ---------------------------------------------------------------------------
// CircuitCache: LRU + shared-lock reads
// ---------------------------------------------------------------------------

std::shared_ptr<const serve::CachedCircuit> make_entry(const std::string& key) {
  auto entry = std::make_shared<serve::CachedCircuit>();
  entry->key = key;
  return entry;
}

TEST(CircuitCacheTest, EvictsLeastRecentlyUsedAndKeepsHandlesAlive) {
  serve::CircuitCache cache(2);
  auto a = cache.insert(make_entry("c-a")).entry;
  cache.insert(make_entry("c-b"));
  ASSERT_NE(cache.find("c-a"), nullptr);  // bump a; b is now LRU
  auto result = cache.insert(make_entry("c-c"));
  EXPECT_EQ(result.evicted, 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find("c-b"), nullptr);   // evicted
  EXPECT_NE(cache.find("c-a"), nullptr);   // survived (recently used)
  EXPECT_NE(cache.find("c-c"), nullptr);
  EXPECT_EQ(a->key, "c-a");  // in-flight handle is unaffected by cache churn
}

TEST(CircuitCacheTest, InsertIsIdempotentOnKeyCollision) {
  serve::CircuitCache cache(4);
  auto first = cache.insert(make_entry("c-x"));
  auto second = cache.insert(make_entry("c-x"));
  EXPECT_FALSE(first.existed);
  EXPECT_TRUE(second.existed);
  EXPECT_EQ(first.entry.get(), second.entry.get());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CircuitCacheTest, ConcurrentReadersSurviveEviction) {
  serve::CircuitCache cache(2);
  cache.insert(make_entry("c-0"));
  std::atomic<bool> stop{false};
  std::atomic<int> hits{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int k = 0; k < 8; ++k) {
          auto entry = cache.find("c-" + std::to_string(k));
          if (entry) hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int k = 1; k < 8; ++k) {
    cache.insert(make_entry("c-" + std::to_string(k)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_LE(cache.size(), 2u);
  EXPECT_GT(hits.load(), 0);
}

TEST(CircuitCacheTest, ContentHashKeysAreStableAndFormatScoped) {
  EXPECT_EQ(serve::circuit_key("blif", "abc"), serve::circuit_key("blif", "abc"));
  EXPECT_NE(serve::circuit_key("blif", "abc"), serve::circuit_key("verilog", "abc"));
  EXPECT_NE(serve::circuit_key("blif", "abc"), serve::circuit_key("blif", "abd"));
  EXPECT_EQ(serve::circuit_key("blif", "abc").substr(0, 2), "c-");
  EXPECT_EQ(serve::circuit_key("blif", "abc").size(), 18u);
}

// ---------------------------------------------------------------------------
// Signal handling
// ---------------------------------------------------------------------------

TEST(SignalTest, SigintTripsTheInterruptToken) {
  runtime::reset_interrupt_state();
  runtime::install_interrupt_handlers();
  ASSERT_FALSE(runtime::interrupt_requested());
  // One raise only: SA_RESETHAND restores the default disposition after the
  // first delivery (a second SIGINT would terminate the test binary).
  std::raise(SIGINT);
  EXPECT_TRUE(runtime::interrupt_requested());
  EXPECT_EQ(runtime::interrupt_signal(), SIGINT);
  runtime::reset_interrupt_state();
  EXPECT_FALSE(runtime::interrupt_requested());
}

}  // namespace
