// Unit tests for the second-order forward autodiff type Dual2<N>.
//
// Every test compares propagated derivatives against hand-computed closed
// forms; the final suites sweep parameterized inputs so the operator algebra
// is exercised away from special points.

#include "autodiff/dual2.h"

#include <cmath>

#include <gtest/gtest.h>

namespace statsize::autodiff {
namespace {

using D2 = Dual2<2>;
using D3 = Dual2<3>;

constexpr double kTol = 1e-12;

TEST(Dual2, ConstantHasZeroDerivatives) {
  const D2 c = D2::constant(3.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  for (int i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(c.grad(i), 0.0);
    for (int j = i; j < 2; ++j) EXPECT_DOUBLE_EQ(c.hess(i, j), 0.0);
  }
}

TEST(Dual2, VariableSeedsUnitGradient) {
  const D3 x = D3::variable(2.0, 1);
  EXPECT_DOUBLE_EQ(x.value(), 2.0);
  EXPECT_DOUBLE_EQ(x.grad(0), 0.0);
  EXPECT_DOUBLE_EQ(x.grad(1), 1.0);
  EXPECT_DOUBLE_EQ(x.grad(2), 0.0);
}

TEST(Dual2, HessIndexCoversPackedTriangle) {
  // All (i,j) pairs with i<=j must map to distinct indices in [0, size).
  bool seen[D3::kHessSize] = {};
  for (int i = 0; i < 3; ++i) {
    for (int j = i; j < 3; ++j) {
      const int k = D3::hess_index(i, j);
      ASSERT_GE(k, 0);
      ASSERT_LT(k, D3::kHessSize);
      EXPECT_FALSE(seen[k]);
      seen[k] = true;
      EXPECT_EQ(k, D3::hess_index(j, i));
    }
  }
}

TEST(Dual2, ProductRule) {
  // f(x, y) = x * y at (3, 5): grad = (5, 3), hess = [[0,1],[1,0]].
  const D2 x = D2::variable(3.0, 0);
  const D2 y = D2::variable(5.0, 1);
  const D2 f = x * y;
  EXPECT_DOUBLE_EQ(f.value(), 15.0);
  EXPECT_DOUBLE_EQ(f.grad(0), 5.0);
  EXPECT_DOUBLE_EQ(f.grad(1), 3.0);
  EXPECT_DOUBLE_EQ(f.hess(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(f.hess(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(f.hess(1, 1), 0.0);
}

TEST(Dual2, QuotientRule) {
  // f(x, y) = x / y at (1, 2).
  const D2 x = D2::variable(1.0, 0);
  const D2 y = D2::variable(2.0, 1);
  const D2 f = x / y;
  EXPECT_NEAR(f.value(), 0.5, kTol);
  EXPECT_NEAR(f.grad(0), 0.5, kTol);              // 1/y
  EXPECT_NEAR(f.grad(1), -0.25, kTol);            // -x/y^2
  EXPECT_NEAR(f.hess(0, 0), 0.0, kTol);
  EXPECT_NEAR(f.hess(0, 1), -0.25, kTol);         // -1/y^2
  EXPECT_NEAR(f.hess(1, 1), 0.25, kTol);          // 2x/y^3
}

TEST(Dual2, SqrtDerivatives) {
  const D2 x = D2::variable(4.0, 0);
  const D2 f = sqrt(x);
  EXPECT_NEAR(f.value(), 2.0, kTol);
  EXPECT_NEAR(f.grad(0), 0.25, kTol);             // 1/(2 sqrt(x))
  EXPECT_NEAR(f.hess(0, 0), -1.0 / 32.0, kTol);   // -1/(4 x^{3/2})
}

TEST(Dual2, ExpLogRoundTrip) {
  const D2 x = D2::variable(0.7, 0);
  const D2 f = log(exp(x));
  EXPECT_NEAR(f.value(), 0.7, kTol);
  EXPECT_NEAR(f.grad(0), 1.0, kTol);
  EXPECT_NEAR(f.hess(0, 0), 0.0, 1e-10);
}

TEST(Dual2, NormalCdfPdfConsistency) {
  // d/dx Phi(x) == phi(x) and d/dx phi(x) == -x phi(x).
  for (double v : {-2.0, -0.5, 0.0, 0.3, 1.7}) {
    const D2 x = D2::variable(v, 0);
    const D2 cdf = normal_cdf(x);
    const D2 pdf = normal_pdf(x);
    EXPECT_NEAR(cdf.grad(0), pdf.value(), kTol) << "x=" << v;
    EXPECT_NEAR(pdf.grad(0), -v * pdf.value(), kTol) << "x=" << v;
    EXPECT_NEAR(cdf.hess(0, 0), -v * pdf.value(), kTol) << "x=" << v;
  }
}

TEST(Dual2, UnaryMinusNegatesEverything) {
  const D2 x = D2::variable(1.5, 0);
  const D2 y = D2::variable(-0.5, 1);
  const D2 f = x * x * y;
  const D2 g = -f;
  EXPECT_DOUBLE_EQ(g.value(), -f.value());
  for (int i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(g.grad(i), -f.grad(i));
    for (int j = i; j < 2; ++j) EXPECT_DOUBLE_EQ(g.hess(i, j), -f.hess(i, j));
  }
}

TEST(Dual2, ComparisonUsesValues) {
  const D2 a = D2::variable(1.0, 0);
  const D2 b = D2::variable(2.0, 1);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(a >= a);
}

// --- Parameterized sweep: a nontrivial composite function vs closed form ---
//
// f(x, y) = exp(x * y) / sqrt(x + y)  with closed-form gradient/Hessian
// computed symbolically below.

class CompositeSweep : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(CompositeSweep, MatchesClosedForm) {
  const auto [xv, yv] = GetParam();
  const D2 x = D2::variable(xv, 0);
  const D2 y = D2::variable(yv, 1);
  const D2 f = exp(x * y) / sqrt(x + y);

  const double s = xv + yv;
  const double e = std::exp(xv * yv);
  const double val = e / std::sqrt(s);
  // fx = e^{xy} (y / sqrt(s) - 1/(2 s^{3/2}))
  const double fx = e * (yv / std::sqrt(s) - 0.5 / std::pow(s, 1.5));
  const double fy = e * (xv / std::sqrt(s) - 0.5 / std::pow(s, 1.5));
  EXPECT_NEAR(f.value(), val, 1e-12 * std::abs(val) + 1e-12);
  EXPECT_NEAR(f.grad(0), fx, 1e-10 * std::abs(fx) + 1e-10);
  EXPECT_NEAR(f.grad(1), fy, 1e-10 * std::abs(fy) + 1e-10);

  // Hessian via central finite differences of the closed-form gradient.
  const double h = 1e-6;
  auto grad_x = [](double xa, double ya) {
    const double ss = xa + ya;
    return std::exp(xa * ya) * (ya / std::sqrt(ss) - 0.5 / std::pow(ss, 1.5));
  };
  auto grad_y = [](double xa, double ya) {
    const double ss = xa + ya;
    return std::exp(xa * ya) * (xa / std::sqrt(ss) - 0.5 / std::pow(ss, 1.5));
  };
  const double fxx = (grad_x(xv + h, yv) - grad_x(xv - h, yv)) / (2 * h);
  const double fxy = (grad_x(xv, yv + h) - grad_x(xv, yv - h)) / (2 * h);
  const double fyy = (grad_y(xv, yv + h) - grad_y(xv, yv - h)) / (2 * h);
  const double tol = 1e-5 * (1.0 + std::abs(fxx) + std::abs(fyy));
  EXPECT_NEAR(f.hess(0, 0), fxx, tol);
  EXPECT_NEAR(f.hess(0, 1), fxy, tol);
  EXPECT_NEAR(f.hess(1, 1), fyy, tol);
}

INSTANTIATE_TEST_SUITE_P(Grid, CompositeSweep,
                         ::testing::Values(std::pair{0.5, 0.5}, std::pair{1.0, 2.0},
                                           std::pair{0.2, 1.7}, std::pair{2.5, 0.1},
                                           std::pair{1.3, 1.3}, std::pair{3.0, 0.5}));

}  // namespace
}  // namespace statsize::autodiff
