// End-to-end integration tests across all modules: BLIF import -> sizing ->
// Monte Carlo verification; power-driven sizing; KKT-style optimality probes
// on sizing results; cross-engine consistency on randomized circuits.

#include <cmath>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

#include "core/reduced_space.h"
#include "core/sizer.h"
#include "netlist/blif.h"
#include "netlist/generators.h"
#include "ssta/activity.h"
#include "ssta/monte_carlo.h"
#include "ssta/ssta.h"

namespace statsize {
namespace {

using core::DelayConstraint;
using core::Method;
using core::Objective;
using core::Sizer;
using core::SizerOptions;
using core::SizingResult;
using core::SizingSpec;
using netlist::Circuit;
using netlist::NodeId;
using netlist::NodeKind;

SizerOptions reduced() {
  SizerOptions o;
  o.method = Method::kReducedSpace;
  return o;
}

TEST(Integration, BlifImportSizeAndVerify) {
  // A small multi-output network written as BLIF, round-tripped, sized, and
  // verified against Monte Carlo.
  const std::string blif =
      ".model demo\n"
      ".inputs a b c d\n"
      ".outputs y z\n"
      ".names a b n1\n11 1\n"
      ".names c d n2\n11 1\n"
      ".names n1 n2 y\n11 1\n"
      ".names n1 c z\n11 1\n"
      ".end\n";
  std::istringstream in(blif);
  const Circuit c = netlist::read_blif(in);
  EXPECT_EQ(c.num_gates(), 4);
  EXPECT_EQ(c.outputs().size(), 2u);

  SizingSpec spec;
  spec.objective = Objective::min_delay(3.0);
  const SizingResult r = Sizer(c, spec).run();
  ASSERT_TRUE(r.converged) << r.status;

  const ssta::DelayCalculator calc(c, spec.sigma_model);
  ssta::MonteCarloOptions mc;
  mc.num_samples = 30000;
  mc.truncate_negative_delays = false;
  const ssta::MonteCarloResult sim = ssta::run_monte_carlo(c, calc.all_delays(r.speed), mc);
  EXPECT_NEAR(r.circuit_delay.mu, sim.mean, 0.05 * sim.mean);
}

TEST(Integration, PowerObjectiveShiftsSizesOffHotGates) {
  // Construct a circuit with one high-activity and one low-activity branch
  // feeding symmetric output paths; the power objective must prefer speeding
  // the low-activity branch when both can meet timing.
  const netlist::CellLibrary& lib = netlist::CellLibrary::standard();
  Circuit c(lib);
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  // Hot branch: XOR chains keep activity at the maximum.
  const NodeId h1 = c.add_gate(lib.find("XOR2"), {a, b}, "h1");
  const NodeId h2 = c.add_gate(lib.find("XOR2"), {h1, a}, "h2");
  // Cold branch: AND chains drive probabilities toward 0 (low activity).
  const NodeId c1 = c.add_gate(lib.find("AND2"), {a, b}, "c1");
  const NodeId c2 = c.add_gate(lib.find("AND2"), {c1, b}, "c2");
  const NodeId out = c.add_gate(lib.find("NAND2"), {h2, c2}, "out");
  for (NodeId id : {h1, h2, c1, c2, out}) c.set_wire_load(id, 1.0);
  c.mark_output(out, 2.0);
  c.finalize();

  const auto weights = ssta::power_weights(c);
  // Activity ordering sanity: the XOR branch toggles more.
  EXPECT_GT(weights[static_cast<std::size_t>(h2)], weights[static_cast<std::size_t>(c2)]);

  SizingSpec spec;
  const ssta::DelayCalculator calc(c, spec.sigma_model);
  std::vector<double> s(static_cast<std::size_t>(c.num_nodes()), spec.max_speed);
  const double lo = ssta::run_ssta(calc, s).circuit_delay.mu;
  std::fill(s.begin(), s.end(), 1.0);
  const double hi = ssta::run_ssta(calc, s).circuit_delay.mu;
  spec.delay_constraint = DelayConstraint::at_most(lo + 0.5 * (hi - lo));

  spec.objective = Objective::min_area();
  const SizingResult r_area = Sizer(c, spec).run(reduced());
  spec.objective = Objective::min_weighted(weights);
  const SizingResult r_power = Sizer(c, spec).run(reduced());
  ASSERT_TRUE(r_area.converged) << r_area.status;
  ASSERT_TRUE(r_power.converged) << r_power.status;

  auto total_power = [&](const SizingResult& r) {
    double p = 0.0;
    for (NodeId id : c.topo_order()) {
      if (c.node(id).kind == NodeKind::kGate) {
        p += weights[static_cast<std::size_t>(id)] * r.speed[static_cast<std::size_t>(id)];
      }
    }
    return p;
  };
  EXPECT_LE(total_power(r_power), total_power(r_area) + 1e-9);
}

TEST(Integration, SizingSatisfiesFirstOrderOptimalityInReducedSpace) {
  // At the reduced-space optimum of min mu, every gate must satisfy the
  // projected stationarity condition: interior -> |d mu / dS| small;
  // at lower bound -> derivative >= 0; at upper bound -> derivative <= 0.
  const Circuit c = netlist::make_mcnc_like("apex2");
  SizingSpec spec;
  spec.objective = Objective::min_delay(0.0);
  SizerOptions opt = reduced();
  opt.optimality_tol = 1e-5;
  const SizingResult r = Sizer(c, spec).run(opt);
  ASSERT_TRUE(r.converged) << r.status;

  const core::ReducedEvaluator eval(c, spec.sigma_model);
  std::vector<double> grad;
  eval.eval_metric(r.speed, 0.0, &grad);
  for (NodeId id : c.topo_order()) {
    if (c.node(id).kind != NodeKind::kGate) continue;
    const double s = r.speed[static_cast<std::size_t>(id)];
    const double g = grad[static_cast<std::size_t>(id)];
    if (s <= 1.0 + 1e-6) {
      EXPECT_GE(g, -1e-4) << "gate " << id;
    } else if (s >= spec.max_speed - 1e-6) {
      EXPECT_LE(g, 1e-4) << "gate " << id;
    } else {
      EXPECT_NEAR(g, 0.0, 1e-4) << "gate " << id;
    }
  }
}

TEST(Integration, WarmStartedFullSpaceNeverWorseThanReduced) {
  std::mt19937 rng(2026);
  for (int trial = 0; trial < 3; ++trial) {
    netlist::RandomDagParams p;
    p.num_gates = 40 + 25 * trial;
    p.seed = 500 + static_cast<std::uint64_t>(trial);
    const Circuit c = netlist::make_random_dag(p);
    SizingSpec spec;
    spec.objective = Objective::min_delay(trial == 1 ? 3.0 : 0.0);
    const double k = spec.objective.sigma_weight;
    const SizingResult rr = Sizer(c, spec).run(reduced());
    SizerOptions fo;
    fo.method = Method::kFullSpace;
    const SizingResult rf = Sizer(c, spec).run(fo);
    EXPECT_LE(rf.delay_metric(k), rr.delay_metric(k) + 1e-3 * (1 + rr.delay_metric(k)))
        << "trial " << trial;
  }
}

TEST(Integration, EqualityPinnedMeanIsHitFromBothSides) {
  // Start above and below the pinned mean; both must land on it.
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  spec.objective = Objective::min_area();
  const ssta::DelayCalculator calc(c, spec.sigma_model);
  std::vector<double> s(static_cast<std::size_t>(c.num_nodes()), spec.max_speed);
  const double lo = ssta::run_ssta(calc, s).circuit_delay.mu;
  std::fill(s.begin(), s.end(), 1.0);
  const double hi = ssta::run_ssta(calc, s).circuit_delay.mu;
  const double target = 0.5 * (lo + hi);
  spec.delay_constraint = DelayConstraint::exactly(target);

  const std::vector<double> from_slow(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const std::vector<double> from_fast(static_cast<std::size_t>(c.num_nodes()), spec.max_speed);
  const SizingResult ra = Sizer(c, spec).run(reduced(), from_slow);
  const SizingResult rb = Sizer(c, spec).run(reduced(), from_fast);
  EXPECT_NEAR(ra.circuit_delay.mu, target, 0.01);
  EXPECT_NEAR(rb.circuit_delay.mu, target, 0.01);
  EXPECT_NEAR(ra.sum_speed, rb.sum_speed, 0.05 * ra.sum_speed);
}

TEST(Integration, SigmaModelOffsetPropagatesEndToEnd) {
  // A purely additive sigma model (kappa = 0): every gate contributes the
  // same variance regardless of sizing, so min-mu and min-(mu+3sigma) give
  // identical optima on a single-path circuit.
  const Circuit c = netlist::make_chain(6);
  SizingSpec spec;
  spec.sigma_model = {0.0, 0.3};
  spec.objective = Objective::min_delay(0.0);
  const SizingResult r0 = Sizer(c, spec).run(reduced());
  spec.objective = Objective::min_delay(3.0);
  const SizingResult r3 = Sizer(c, spec).run(reduced());
  ASSERT_TRUE(r0.converged);
  ASSERT_TRUE(r3.converged);
  EXPECT_NEAR(r0.circuit_delay.mu, r3.circuit_delay.mu, 1e-3);
  // Chain of 6 gates, each sigma = 0.3: total var = 6 * 0.09.
  EXPECT_NEAR(r0.circuit_delay.var, 6 * 0.09, 1e-9);
}

TEST(Integration, BlifRoundTripPreservesSizingResult) {
  // Structure determines the optimum; a BLIF round trip must preserve it.
  const Circuit original = netlist::make_mcnc_like("apex2");
  std::ostringstream out;
  netlist::write_blif(out, original);
  std::istringstream in(out.str());
  const Circuit parsed = netlist::read_blif(in);

  SizingSpec spec;
  spec.objective = Objective::min_delay(0.0);
  const SizingResult r_orig = Sizer(original, spec).run(reduced());
  const SizingResult r_rt = Sizer(parsed, spec).run(reduced());
  // Cell bindings differ (generic NAND mapping + default loads), so compare
  // only that both solve and improve their own baseline by similar ratios.
  const ssta::DelayCalculator calc0(original, spec.sigma_model);
  const ssta::DelayCalculator calc1(parsed, spec.sigma_model);
  const std::vector<double> u0(static_cast<std::size_t>(original.num_nodes()), 1.0);
  const std::vector<double> u1(static_cast<std::size_t>(parsed.num_nodes()), 1.0);
  const double gain0 = r_orig.circuit_delay.mu / ssta::run_ssta(calc0, u0).circuit_delay.mu;
  const double gain1 = r_rt.circuit_delay.mu / ssta::run_ssta(calc1, u1).circuit_delay.mu;
  EXPECT_TRUE(r_orig.converged);
  EXPECT_TRUE(r_rt.converged);
  EXPECT_NEAR(gain0, gain1, 0.15);
}

}  // namespace
}  // namespace statsize
