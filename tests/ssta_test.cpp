// Tests for the timing engines: statistical STA against closed forms and
// Monte Carlo, the deterministic corner baseline, and criticality.

#include "ssta/ssta.h"

#include "netlist/generators.h"
#include "ssta/monte_carlo.h"

#include <cmath>

#include <gtest/gtest.h>

namespace statsize::ssta {
namespace {

using netlist::Circuit;
using netlist::make_balanced_tree;
using netlist::make_chain;
using netlist::make_mcnc_like;
using netlist::make_random_dag;
using netlist::make_tree_circuit;
using netlist::NodeId;
using stat::NormalRV;

std::vector<double> unit_speed(const Circuit& c) {
  return std::vector<double>(static_cast<std::size_t>(c.num_nodes()), 1.0);
}

TEST(DelayModel, ChainGateDelayMatchesEq14) {
  // INV chain: every interior INV drives one INV pin (c_in * S) plus wire.
  const Circuit c = make_chain(3);
  const netlist::CellType& inv = c.library().cell(c.library().find("INV"));
  DelayCalculator calc(c, SigmaModel{0.25, 0.0});
  const std::vector<double> speed = unit_speed(c);

  const NodeId g0 = c.topo_order()[1];  // first gate after the PI
  const double load = 0.1 + inv.c_in * 1.0;  // wire + next INV pin at S=1
  EXPECT_NEAR(calc.mean_delay(g0, speed), inv.t_int + inv.c * load, 1e-12);

  const NormalRV d = calc.delay(g0, speed);
  EXPECT_NEAR(d.sigma(), 0.25 * d.mu, 1e-12);
}

TEST(DelayModel, SpeedingUpGateReducesItsDelayButLoadsDrivers) {
  const Circuit c = make_chain(3);
  DelayCalculator calc(c);
  std::vector<double> speed = unit_speed(c);
  const NodeId g0 = c.topo_order()[1];
  const NodeId g1 = c.topo_order()[2];

  const double d0_before = calc.mean_delay(g0, speed);
  const double d1_before = calc.mean_delay(g1, speed);
  speed[static_cast<std::size_t>(g1)] = 3.0;
  EXPECT_GT(calc.mean_delay(g0, speed), d0_before);  // g0 now drives a bigger pin
  EXPECT_LT(calc.mean_delay(g1, speed), d1_before);  // g1 itself got faster
}

TEST(DelayModel, TotalSpeedAndAreaCountGatesOnly) {
  const Circuit c = make_tree_circuit();
  std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 2.0);
  EXPECT_DOUBLE_EQ(DelayCalculator::total_speed(c, speed), 14.0);  // 7 gates * 2
  const double nand2_area = c.library().cell(c.library().find("NAND2")).area;
  EXPECT_DOUBLE_EQ(DelayCalculator::total_area(c, speed), 7 * 2.0 * nand2_area);
}

TEST(Ssta, ChainAccumulatesMeanAndVariance) {
  // On a chain there is no max operation: mu and var just add (eq. 4).
  const Circuit c = make_chain(8);
  std::vector<NormalRV> delays(static_cast<std::size_t>(c.num_nodes()));
  double want_mu = 0.0;
  double want_var = 0.0;
  int k = 1;
  for (NodeId id : c.topo_order()) {
    if (c.node(id).kind != netlist::NodeKind::kGate) continue;
    delays[static_cast<std::size_t>(id)] = {0.5 + 0.1 * k, 0.01 * k};
    want_mu += 0.5 + 0.1 * k;
    want_var += 0.01 * k;
    ++k;
  }
  const TimingReport r = run_ssta(c, delays);
  EXPECT_NEAR(r.circuit_delay.mu, want_mu, 1e-12);
  EXPECT_NEAR(r.circuit_delay.var, want_var, 1e-12);
}

TEST(Ssta, InputArrivalShiftsOutput) {
  const Circuit c = make_chain(4);
  DelayCalculator calc(c);
  const auto delays = calc.all_delays(unit_speed(c));
  const TimingReport base = run_ssta(c, delays);
  const TimingReport shifted = run_ssta(c, delays, NormalRV{2.0, 0.3});
  EXPECT_NEAR(shifted.circuit_delay.mu, base.circuit_delay.mu + 2.0, 1e-10);
  EXPECT_NEAR(shifted.circuit_delay.var, base.circuit_delay.var + 0.3, 1e-10);
}

TEST(Ssta, ZeroSigmaReducesToDeterministicSta) {
  const Circuit c = make_mcnc_like("apex2");
  DelayCalculator calc(c, SigmaModel{0.0, 0.0});
  const auto delays = calc.all_delays(unit_speed(c));
  const TimingReport ssta = run_ssta(c, delays);
  const StaReport sta = run_sta(c, delays, Corner::kTypical);
  EXPECT_NEAR(ssta.circuit_delay.mu, sta.circuit_delay, 1e-9);
  EXPECT_NEAR(ssta.circuit_delay.var, 0.0, 1e-12);
}

TEST(Ssta, CornersBracketTypical) {
  const Circuit c = make_tree_circuit();
  DelayCalculator calc(c);
  const auto delays = calc.all_delays(unit_speed(c));
  const double best = run_sta(c, delays, Corner::kBest).circuit_delay;
  const double typ = run_sta(c, delays, Corner::kTypical).circuit_delay;
  const double worst = run_sta(c, delays, Corner::kWorst).circuit_delay;
  EXPECT_LT(best, typ);
  EXPECT_LT(typ, worst);
}

TEST(Ssta, WorstCaseCornerIsPessimisticVsStatistical) {
  // The paper's motivation (sec. 1): corner analysis overstates uncertainty;
  // the statistical mu+3sigma is tighter than the all-worst-case corner.
  const Circuit c = make_mcnc_like("apex2");
  DelayCalculator calc(c);
  const auto delays = calc.all_delays(unit_speed(c));
  const TimingReport ssta = run_ssta(c, delays);
  const double worst = run_sta(c, delays, Corner::kWorst).circuit_delay;
  EXPECT_LT(ssta.circuit_delay.quantile_offset(3.0), worst);
}

TEST(Ssta, CircuitSigmaShrinksRelativeToElementSigma) {
  // Key claim from [1]/[2] restated in sec. 1: circuit-level relative
  // uncertainty is much smaller than element-level (25%) uncertainty.
  const Circuit c = make_mcnc_like("apex1");
  DelayCalculator calc(c, SigmaModel{0.25, 0.0});
  const TimingReport r = run_ssta(calc, unit_speed(c));
  EXPECT_LT(r.circuit_delay.sigma() / r.circuit_delay.mu, 0.15);
}

TEST(Ssta, RejectsMisSizedDelayVector) {
  const Circuit c = make_chain(2);
  std::vector<NormalRV> wrong(static_cast<std::size_t>(c.num_nodes()) + 1);
  EXPECT_THROW(run_ssta(c, wrong), std::invalid_argument);
  EXPECT_THROW(run_sta(c, wrong, Corner::kTypical), std::invalid_argument);
}

TEST(Ssta, RejectsMisSizedInputArrivalVector) {
  // Regression: a short per-input schedule used to index past its end (one
  // slot per primary input is consumed in topological input order).
  const Circuit c = make_tree_circuit();
  ASSERT_GT(c.num_inputs(), 1);
  DelayCalculator calc(c);
  const auto delays = calc.all_delays(unit_speed(c));
  const std::vector<NormalRV> shorter(static_cast<std::size_t>(c.num_inputs()) - 1);
  EXPECT_THROW(run_ssta(c, delays, shorter), std::invalid_argument);
  const std::vector<NormalRV> longer(static_cast<std::size_t>(c.num_inputs()) + 1);
  EXPECT_THROW(run_ssta(c, delays, longer), std::invalid_argument);
  const std::vector<NormalRV> exact(static_cast<std::size_t>(c.num_inputs()));
  EXPECT_NO_THROW(run_ssta(c, delays, exact));
}

// --- SSTA vs Monte Carlo on whole circuits (parameterized) -----------------

struct McCase {
  const char* kind;
  int size;
  double mu_tol;     ///< relative tolerance on the mean
  double sigma_tol;  ///< relative tolerance on the standard deviation
};

class SstaVsMonteCarlo : public ::testing::TestWithParam<McCase> {};

TEST_P(SstaVsMonteCarlo, MomentsAgreeWithinTolerance) {
  const McCase& p = GetParam();
  Circuit c = [&] {
    if (std::string(p.kind) == "chain") return make_chain(p.size);
    if (std::string(p.kind) == "tree") return make_balanced_tree(p.size);
    netlist::RandomDagParams rp;
    rp.num_gates = p.size;
    rp.seed = 99;
    return make_random_dag(rp);
  }();
  DelayCalculator calc(c, SigmaModel{0.25, 0.0});
  const auto delays = calc.all_delays(unit_speed(c));
  const TimingReport ssta = run_ssta(c, delays);

  MonteCarloOptions opt;
  opt.num_samples = 20000;
  opt.seed = 7;
  opt.truncate_negative_delays = false;  // match the analytic model exactly
  const MonteCarloResult mc = run_monte_carlo(c, delays, opt);

  // Chains involve no max at all and balanced trees have fully independent
  // max operands, so the analytic moments are near-exact there. The random
  // DAGs reconverge heavily (few PIs feeding hundreds of gates), which
  // violates the independence assumption of eq. 6: the analytic model then
  // overestimates the mean slightly and underestimates sigma — the effect the
  // paper's future-work section is about. Tolerances encode that hierarchy.
  EXPECT_NEAR(ssta.circuit_delay.mu, mc.mean, p.mu_tol * mc.mean);
  EXPECT_NEAR(ssta.circuit_delay.sigma(), mc.stddev, p.sigma_tol * mc.stddev + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Circuits, SstaVsMonteCarlo,
                         ::testing::Values(McCase{"chain", 12, 0.01, 0.05},
                                           McCase{"tree", 4, 0.01, 0.05},
                                           McCase{"tree", 6, 0.01, 0.05},
                                           McCase{"dag", 60, 0.10, 0.70},
                                           McCase{"dag", 150, 0.10, 0.70},
                                           McCase{"dag", 400, 0.10, 0.70}));

TEST(MonteCarlo, QuantileAndYieldAreConsistent) {
  const Circuit c = make_tree_circuit();
  DelayCalculator calc(c);
  const auto delays = calc.all_delays(unit_speed(c));
  MonteCarloOptions opt;
  opt.num_samples = 5000;
  const MonteCarloResult mc = run_monte_carlo(c, delays, opt);
  const double q90 = mc.quantile(0.9);
  EXPECT_NEAR(mc.yield(q90), 0.9, 0.02);
  EXPECT_LE(mc.min, mc.mean);
  EXPECT_LE(mc.mean, mc.max);
  EXPECT_NEAR(mc.yield(mc.max), 1.0, 1e-12);
  EXPECT_LT(mc.yield(mc.min - 1.0), 0.01);
}

TEST(MonteCarlo, QuantileRejectsProbabilityOutsideUnitInterval) {
  // Regression: quantile(p) used to cast a negative scaled index straight to
  // size_t, turning a caller typo (p = -0.1) into a wild out-of-bounds read.
  const Circuit c = make_tree_circuit();
  DelayCalculator calc(c);
  const auto delays = calc.all_delays(unit_speed(c));
  MonteCarloOptions opt;
  opt.num_samples = 200;
  const MonteCarloResult mc = run_monte_carlo(c, delays, opt);
  EXPECT_THROW(mc.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(mc.quantile(1.5), std::invalid_argument);
  EXPECT_THROW(mc.quantile(std::nan("")), std::invalid_argument);
  // The closed endpoints stay valid and bracket the sample range.
  EXPECT_EQ(mc.quantile(0.0), mc.min);
  EXPECT_EQ(mc.quantile(1.0), mc.max);
}

TEST(MonteCarlo, RejectsNonPositiveSampleCounts) {
  // Regression: num_samples = 0 reached samples.front()/.back() on an empty
  // vector (UB) and a divide-by-zero in criticality, and a negative count
  // wrapped through the size_t cast in the chunk partition into an absurd
  // allocation. Both entry points must reject with a named invalid_argument
  // before any trial math runs.
  const Circuit c = make_tree_circuit();
  DelayCalculator calc(c);
  const auto delays = calc.all_delays(unit_speed(c));
  MonteCarloOptions opt;
  for (const int bad : {0, -1, -20000}) {
    opt.num_samples = bad;
    EXPECT_THROW(run_monte_carlo(c, delays, opt), std::invalid_argument) << bad;
    EXPECT_THROW(monte_carlo_criticality(c, delays, opt), std::invalid_argument) << bad;
  }
  opt.num_samples = -20000;
  try {
    run_monte_carlo(c, delays, opt);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("run_monte_carlo"), std::string::npos) << what;
    EXPECT_NE(what.find("-20000"), std::string::npos) << what;
  }
  try {
    monte_carlo_criticality(c, delays, opt);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("monte_carlo_criticality"), std::string::npos);
  }
  // The smallest legal count still works end to end.
  opt.num_samples = 1;
  const MonteCarloResult one = run_monte_carlo(c, delays, opt);
  EXPECT_EQ(one.samples.size(), 1u);
  EXPECT_EQ(one.min, one.max);
}

TEST(MonteCarlo, SeedReproducibility) {
  const Circuit c = make_tree_circuit();
  DelayCalculator calc(c);
  const auto delays = calc.all_delays(unit_speed(c));
  MonteCarloOptions opt;
  opt.num_samples = 1000;
  opt.seed = 123;
  const MonteCarloResult a = run_monte_carlo(c, delays, opt);
  const MonteCarloResult b = run_monte_carlo(c, delays, opt);
  EXPECT_EQ(a.samples, b.samples);
}

TEST(MonteCarlo, CriticalityConcentratesOnOutputGate) {
  // In the tree, gate G is on every path: criticality 1. Leaves split.
  const Circuit c = make_tree_circuit();
  DelayCalculator calc(c);
  const auto delays = calc.all_delays(unit_speed(c));
  MonteCarloOptions opt;
  opt.num_samples = 4000;
  const auto crit = monte_carlo_criticality(c, delays, opt);

  const NodeId g = c.outputs().front();
  EXPECT_DOUBLE_EQ(crit[static_cast<std::size_t>(g)], 1.0);
  // The four leaf gates share criticality roughly equally (symmetric tree).
  double leaf_sum = 0.0;
  for (NodeId id : c.topo_order()) {
    const netlist::Node& n = c.node(id);
    if (n.kind == netlist::NodeKind::kGate && n.name.size() == 1 &&
        (n.name[0] == 'A' || n.name[0] == 'B' || n.name[0] == 'D' || n.name[0] == 'E')) {
      EXPECT_NEAR(crit[static_cast<std::size_t>(id)], 0.25, 0.07) << n.name;
      leaf_sum += crit[static_cast<std::size_t>(id)];
    }
  }
  EXPECT_NEAR(leaf_sum, 1.0, 1e-12);  // exactly one leaf per trial
}

}  // namespace
}  // namespace statsize::ssta
