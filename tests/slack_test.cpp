// Tests for statistical slack analysis and critical-path extraction.

#include "ssta/slack.h"

#include "netlist/generators.h"
#include "ssta/ssta.h"
#include "stat/clark.h"

#include <cmath>

#include <gtest/gtest.h>

namespace statsize::ssta {
namespace {

using netlist::Circuit;
using netlist::NodeId;
using netlist::NodeKind;
using stat::NormalRV;

TEST(ClarkMin, MirrorsClarkMax) {
  const NormalRV a{2.0, 0.8};
  const NormalRV b{3.0, 0.4};
  const NormalRV mn = stat::clark_min(a, b);
  const NormalRV mx = stat::clark_max({-a.mu, a.var}, {-b.mu, b.var});
  EXPECT_DOUBLE_EQ(mn.mu, -mx.mu);
  EXPECT_DOUBLE_EQ(mn.var, mx.var);
  // E[min] <= min of means.
  EXPECT_LE(mn.mu, std::min(a.mu, b.mu) + 1e-12);
}

TEST(SlackAnalysis, ChainSlacksAreUniformAndConsistent) {
  // On a chain with deadline D, every node's slack mean equals
  // D - mu(total path), and the slack variance equals the total path var
  // (required and arrival cover complementary halves of the chain).
  const Circuit c = netlist::make_chain(5);
  const DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const auto delays = calc.all_delays(speed);
  const TimingReport timing = run_ssta(c, delays);
  const double deadline = timing.circuit_delay.mu + 2.0;
  const SlackReport slacks = compute_slacks(c, delays, timing, deadline);

  for (NodeId id : c.topo_order()) {
    const NormalRV& s = slacks.slack[static_cast<std::size_t>(id)];
    EXPECT_NEAR(s.mu, 2.0, 1e-9) << "node " << id;
    EXPECT_NEAR(s.var, timing.circuit_delay.var, 1e-9) << "node " << id;
  }
}

TEST(SlackAnalysis, MeetProbabilityTracksDeadline) {
  const Circuit c = netlist::make_tree_circuit();
  const DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const auto delays = calc.all_delays(speed);
  const TimingReport timing = run_ssta(c, delays);
  const NodeId out = c.outputs().front();

  // Deadline at the mean arrival: ~50%; far above: ~100%; far below: ~0%.
  const double mu = timing.circuit_delay.mu;
  EXPECT_NEAR(compute_slacks(c, delays, timing, mu).meet_probability(out), 0.5, 1e-6);
  EXPECT_GT(compute_slacks(c, delays, timing, mu + 10).meet_probability(out), 0.999);
  EXPECT_LT(compute_slacks(c, delays, timing, mu - 10).meet_probability(out), 0.001);
}

TEST(SlackAnalysis, OffCriticalBranchHasMoreSlack) {
  // Two parallel branches of different depth into one NAND: the shallow
  // branch gets more mean slack.
  const netlist::CellLibrary& lib = netlist::CellLibrary::standard();
  netlist::Circuit c(lib);
  const NodeId a = c.add_input("a");
  const NodeId b = c.add_input("b");
  const NodeId d1 = c.add_gate(lib.find("INV"), {a}, "deep1");
  const NodeId d2 = c.add_gate(lib.find("INV"), {d1}, "deep2");
  const NodeId d3 = c.add_gate(lib.find("INV"), {d2}, "deep3");
  const NodeId sh = c.add_gate(lib.find("INV"), {b}, "shallow");
  const NodeId out = c.add_gate(lib.find("NAND2"), {d3, sh}, "out");
  c.mark_output(out);
  c.finalize();

  const DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const auto delays = calc.all_delays(speed);
  const TimingReport timing = run_ssta(c, delays);
  const SlackReport slacks =
      compute_slacks(c, delays, timing, timing.circuit_delay.mu + 1.0);
  EXPECT_GT(slacks.slack[static_cast<std::size_t>(sh)].mu,
            slacks.slack[static_cast<std::size_t>(d3)].mu + 0.5);

  // And the critical path runs through the deep branch.
  const auto path = extract_critical_path(c, timing);
  ASSERT_GE(path.size(), 5u);
  EXPECT_EQ(c.node(path.front()).kind, NodeKind::kPrimaryInput);
  EXPECT_EQ(path.back(), out);
  bool contains_deep = false;
  for (NodeId id : path) contains_deep = contains_deep || id == d3;
  EXPECT_TRUE(contains_deep);
}

TEST(SlackAnalysis, CriticalPathArrivalsAreMonotone) {
  const Circuit c = netlist::make_mcnc_like("apex2");
  const DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const TimingReport timing = run_ssta(c, calc.all_delays(speed));
  const auto path = extract_critical_path(c, timing);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(c.node(path.front()).kind, NodeKind::kPrimaryInput);
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_GE(timing.arrival[static_cast<std::size_t>(path[i])].mu,
              timing.arrival[static_cast<std::size_t>(path[i - 1])].mu);
  }
}

TEST(SlackAnalysis, RejectsMisindexedInputs) {
  const Circuit c = netlist::make_chain(2);
  const TimingReport empty;
  std::vector<NormalRV> delays(static_cast<std::size_t>(c.num_nodes()));
  EXPECT_THROW(compute_slacks(c, delays, empty, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace statsize::ssta
