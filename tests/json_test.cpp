// Tests for the JSON writer and the JSON analysis report.

#include "ssta/report.h"
#include "util/json.h"

#include "netlist/generators.h"

#include <sstream>

#include <gtest/gtest.h>

namespace statsize {
namespace {

TEST(JsonWriter, ObjectsArraysAndCommas) {
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_object();
  w.key("a").value(1);
  w.key("b").begin_array();
  w.value("x");
  w.value(2.5);
  w.value(true);
  w.null();
  w.end_array();
  w.key("c").begin_object();
  w.end_object();
  w.end_object();
  const std::string s = out.str();
  // Structure is valid: balanced braces, commas between siblings only.
  EXPECT_NE(s.find("\"a\": 1"), std::string::npos);
  EXPECT_NE(s.find("\"x\","), std::string::npos);
  EXPECT_NE(s.find("true"), std::string::npos);
  EXPECT_NE(s.find("null"), std::string::npos);
  EXPECT_NE(s.find("\"c\": {}"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'), std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['), std::count(s.begin(), s.end(), ']'));
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(util::JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(util::JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(util::JsonWriter::escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(util::JsonWriter::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(util::JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(1.5);
  w.end_array();
  const std::string s = out.str();
  EXPECT_NE(s.find("null"), std::string::npos);
  EXPECT_EQ(s.find("nan"), std::string::npos);
  EXPECT_EQ(s.find("inf"), std::string::npos);
}

TEST(JsonWriter, RoundTripsDoublesExactly) {
  std::ostringstream out;
  util::JsonWriter w(out);
  const double v = 6.9577763242898901;
  w.begin_array();
  w.value(v);
  w.end_array();
  const std::string s = out.str();
  const std::size_t a = s.find_first_of("0123456789");
  EXPECT_EQ(std::stod(s.substr(a)), v);
}

TEST(JsonReport, ContainsAllSections) {
  const netlist::Circuit c = netlist::make_tree_circuit();
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  std::ostringstream out;
  ssta::JsonReportOptions opt;
  opt.include_canonical = true;
  ssta::write_json_report(out, c, calc, speed, opt);
  const std::string s = out.str();
  for (const char* needle :
       {"\"circuit\"", "\"gates\": 7", "\"delay\"", "\"mu\"", "\"canonical_mu\"",
        "\"critical_path\"", "\"sum_speed\": 7", "\"meet_probability\""}) {
    EXPECT_NE(s.find(needle), std::string::npos) << needle;
  }
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'), std::count(s.begin(), s.end(), '}'));
}

TEST(JsonReport, PerNodeSectionIsOptional) {
  const netlist::Circuit c = netlist::make_tree_circuit();
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  std::ostringstream out;
  ssta::JsonReportOptions opt;
  opt.include_per_node = false;
  ssta::write_json_report(out, c, calc, speed, opt);
  EXPECT_EQ(out.str().find("\"arrival_mu\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(JsonParser, ParsesScalars) {
  EXPECT_TRUE(util::parse_json("null").is_null());
  EXPECT_EQ(util::parse_json("true").as_bool(), true);
  EXPECT_EQ(util::parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(util::parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(util::parse_json("-0.5e2").as_number(), -50.0);
  EXPECT_EQ(util::parse_json("\"hi\"").as_string(), "hi");
  EXPECT_EQ(util::parse_json("  17  ").as_int(), 17);
}

TEST(JsonParser, ParsesNestedStructures) {
  const util::JsonValue v = util::parse_json(
      R"({"circuit": "c-abc", "type": "ssta", "params": {"deadline_ms": 250, "jobs": 4},
          "tags": ["a", "b"], "flag": true})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("circuit")->as_string(), "c-abc");
  EXPECT_EQ(v.find("params")->int_or("deadline_ms", 0), 250);
  EXPECT_EQ(v.find("params")->int_or("jobs", 1), 4);
  EXPECT_EQ(v.find("params")->int_or("absent", -3), -3);
  ASSERT_TRUE(v.find("tags")->is_array());
  EXPECT_EQ(v.find("tags")->items().size(), 2u);
  EXPECT_EQ(v.find("tags")->items()[1].as_string(), "b");
  EXPECT_TRUE(v.bool_or("flag", false));
  EXPECT_EQ(v.find("nope"), nullptr);
}

TEST(JsonParser, ObjectPreservesMemberOrder) {
  const util::JsonValue v = util::parse_json(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(JsonParser, DecodesStringEscapes) {
  EXPECT_EQ(util::parse_json(R"("a\"b\\c\nd\t")").as_string(), "a\"b\\c\nd\t");
  // \u escapes: BMP code point (U+00E9), and a surrogate pair (U+1F600).
  EXPECT_EQ(util::parse_json(R"("\u00e9")").as_string(), "\xc3\xa9");
  EXPECT_EQ(util::parse_json(R"("\ud83d\ude00")").as_string(), "\xf0\x9f\x98\x80");
  // Raw UTF-8 bytes pass through untouched.
  EXPECT_EQ(util::parse_json("\"\xc3\xa9\"").as_string(), "\xc3\xa9");
  EXPECT_THROW(util::parse_json(R"("\ud83d")"), util::JsonParseError);
  EXPECT_THROW(util::parse_json(R"("\ude00")"), util::JsonParseError);
  EXPECT_THROW(util::parse_json(R"("\x41")"), util::JsonParseError);
}

TEST(JsonParser, RoundTripsWriterOutput) {
  std::ostringstream out;
  util::JsonWriter w(out);
  const double exact = 6.9577763242898901;
  w.begin_object();
  w.key("mu").value(exact);
  w.key("name").value("a\"b\nc");
  w.key("list").begin_array();
  w.value(1);
  w.value(false);
  w.null();
  w.end_array();
  w.end_object();
  const util::JsonValue v = util::parse_json(out.str());
  EXPECT_EQ(v.find("mu")->as_number(), exact);  // bit-exact through %.17g
  EXPECT_EQ(v.find("name")->as_string(), "a\"b\nc");
  EXPECT_EQ(v.find("list")->items().size(), 3u);
  EXPECT_TRUE(v.find("list")->items()[2].is_null());
}

TEST(JsonParser, RejectsTrailingGarbage) {
  // `{}{}` must not silently parse as `{}` — the serve satellite's regression.
  EXPECT_THROW(util::parse_json("{}{}"), util::JsonParseError);
  EXPECT_THROW(util::parse_json("{} x"), util::JsonParseError);
  EXPECT_THROW(util::parse_json("1 2"), util::JsonParseError);
  EXPECT_THROW(util::parse_json("[1,2] ,"), util::JsonParseError);
  try {
    util::parse_json("{\"a\": 1}\ntrailing");
    FAIL() << "expected JsonParseError";
  } catch (const util::JsonParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 1);
    EXPECT_NE(std::string(e.what()).find("trailing content"), std::string::npos);
  }
}

TEST(JsonParser, ReportsOneBasedLineAndColumn) {
  try {
    util::parse_json("{\n  \"a\": 1,\n  \"b\" 2\n}");
    FAIL() << "expected JsonParseError";
  } catch (const util::JsonParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_EQ(e.column(), 7);  // the '2' where ':' was expected
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("column 7"), std::string::npos);
  }
  try {
    util::parse_json("");
    FAIL() << "expected JsonParseError";
  } catch (const util::JsonParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_EQ(e.column(), 1);
  }
}

TEST(JsonParser, RejectsMalformedDocuments) {
  for (const char* bad :
       {"{", "[", "[1,]", "{\"a\":}", "{\"a\" 1}", "{a: 1}", "\"unterminated", "01", "1.",
        "1e", "+1", "nul", "truex", "[1 2]", "{\"a\": 1,}", "\x01"}) {
    EXPECT_THROW(util::parse_json(bad), util::JsonParseError) << bad;
  }
}

TEST(JsonParser, RejectsAbsurdNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW(util::parse_json(deep), util::JsonParseError);
  // 100 levels is fine.
  std::string ok(100, '[');
  ok += std::string(100, ']');
  EXPECT_TRUE(util::parse_json(ok).is_array());
}

TEST(JsonParser, TypeMismatchesThrowNamedErrors) {
  const util::JsonValue v = util::parse_json(R"({"n": 1, "s": "x"})");
  EXPECT_THROW(v.find("n")->as_string(), std::runtime_error);
  EXPECT_THROW(v.find("s")->as_number(), std::runtime_error);
  EXPECT_THROW(v.as_number(), std::runtime_error);
  EXPECT_THROW(util::parse_json("1.5").as_int(), std::runtime_error);
  // A present-but-mistyped optional member must throw, not fall back.
  EXPECT_THROW(v.number_or("s", 0.0), std::runtime_error);
}

}  // namespace
}  // namespace statsize
