// Tests for the JSON writer and the JSON analysis report.

#include "ssta/report.h"
#include "util/json.h"

#include "netlist/generators.h"

#include <sstream>

#include <gtest/gtest.h>

namespace statsize {
namespace {

TEST(JsonWriter, ObjectsArraysAndCommas) {
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_object();
  w.key("a").value(1);
  w.key("b").begin_array();
  w.value("x");
  w.value(2.5);
  w.value(true);
  w.null();
  w.end_array();
  w.key("c").begin_object();
  w.end_object();
  w.end_object();
  const std::string s = out.str();
  // Structure is valid: balanced braces, commas between siblings only.
  EXPECT_NE(s.find("\"a\": 1"), std::string::npos);
  EXPECT_NE(s.find("\"x\","), std::string::npos);
  EXPECT_NE(s.find("true"), std::string::npos);
  EXPECT_NE(s.find("null"), std::string::npos);
  EXPECT_NE(s.find("\"c\": {}"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'), std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['), std::count(s.begin(), s.end(), ']'));
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(util::JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(util::JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(util::JsonWriter::escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(util::JsonWriter::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(util::JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(1.5);
  w.end_array();
  const std::string s = out.str();
  EXPECT_NE(s.find("null"), std::string::npos);
  EXPECT_EQ(s.find("nan"), std::string::npos);
  EXPECT_EQ(s.find("inf"), std::string::npos);
}

TEST(JsonWriter, RoundTripsDoublesExactly) {
  std::ostringstream out;
  util::JsonWriter w(out);
  const double v = 6.9577763242898901;
  w.begin_array();
  w.value(v);
  w.end_array();
  const std::string s = out.str();
  const std::size_t a = s.find_first_of("0123456789");
  EXPECT_EQ(std::stod(s.substr(a)), v);
}

TEST(JsonReport, ContainsAllSections) {
  const netlist::Circuit c = netlist::make_tree_circuit();
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  std::ostringstream out;
  ssta::JsonReportOptions opt;
  opt.include_canonical = true;
  ssta::write_json_report(out, c, calc, speed, opt);
  const std::string s = out.str();
  for (const char* needle :
       {"\"circuit\"", "\"gates\": 7", "\"delay\"", "\"mu\"", "\"canonical_mu\"",
        "\"critical_path\"", "\"sum_speed\": 7", "\"meet_probability\""}) {
    EXPECT_NE(s.find(needle), std::string::npos) << needle;
  }
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'), std::count(s.begin(), s.end(), '}'));
}

TEST(JsonReport, PerNodeSectionIsOptional) {
  const netlist::Circuit c = netlist::make_tree_circuit();
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  std::ostringstream out;
  ssta::JsonReportOptions opt;
  opt.include_per_node = false;
  ssta::write_json_report(out, c, calc, speed, opt);
  EXPECT_EQ(out.str().find("\"arrival_mu\""), std::string::npos);
}

}  // namespace
}  // namespace statsize
