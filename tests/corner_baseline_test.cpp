// Tests for the corner-methodology substrate: library delay scaling, circuit
// cloning, and the end-to-end property that corner-sized circuits are
// over-margined on the true statistical silicon.

#include <cmath>

#include <gtest/gtest.h>

#include "core/sizer.h"
#include "netlist/circuit.h"
#include "netlist/generators.h"
#include "ssta/ssta.h"

namespace statsize::netlist {
namespace {

TEST(ScaledLibrary, ScalesOnlyDelayConstants) {
  const CellLibrary& base = CellLibrary::standard();
  const CellLibrary scaled = scale_library_delays(base, 1.75);
  ASSERT_EQ(scaled.size(), base.size());
  for (int i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(scaled.cell(i).t_int, 1.75 * base.cell(i).t_int);
    EXPECT_DOUBLE_EQ(scaled.cell(i).c, 1.75 * base.cell(i).c);
    EXPECT_DOUBLE_EQ(scaled.cell(i).c_in, base.cell(i).c_in);
    EXPECT_DOUBLE_EQ(scaled.cell(i).area, base.cell(i).area);
    EXPECT_EQ(scaled.cell(i).name, base.cell(i).name);
  }
  EXPECT_THROW(scale_library_delays(base, 0.0), std::invalid_argument);
}

TEST(CloneWithLibrary, PreservesStructureExactly) {
  const Circuit original = make_mcnc_like("apex2");
  const CellLibrary scaled = scale_library_delays(original.library(), 2.0);
  const Circuit clone = clone_with_library(original, scaled);

  ASSERT_EQ(clone.num_nodes(), original.num_nodes());
  for (NodeId id = 0; id < original.num_nodes(); ++id) {
    const Node& a = original.node(id);
    const Node& b = clone.node(id);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.cell, b.cell);
    EXPECT_EQ(a.fanins, b.fanins);
    EXPECT_EQ(a.is_output, b.is_output);
    EXPECT_DOUBLE_EQ(a.wire_load, b.wire_load);
    EXPECT_DOUBLE_EQ(a.pad_load, b.pad_load);
  }
  EXPECT_EQ(clone.outputs(), original.outputs());
}

TEST(CloneWithLibrary, ScaledDelaysScaleCircuitDelayExactly) {
  // delay = f * (t_int + c * load / S): uniform scaling of t_int and c scales
  // every path delay by f, so the deterministic circuit delay scales by f.
  const Circuit original = make_tree_circuit();
  const CellLibrary scaled = scale_library_delays(original.library(), 1.75);
  const Circuit clone = clone_with_library(original, scaled);

  const std::vector<double> speed(static_cast<std::size_t>(original.num_nodes()), 1.4);
  const ssta::DelayCalculator calc0(original, {0.0, 0.0});
  const ssta::DelayCalculator calc1(clone, {0.0, 0.0});
  const double d0 = ssta::run_sta(original, calc0.all_delays(speed), ssta::Corner::kTypical)
                        .circuit_delay;
  const double d1 =
      ssta::run_sta(clone, calc1.all_delays(speed), ssta::Corner::kTypical).circuit_delay;
  EXPECT_NEAR(d1, 1.75 * d0, 1e-9);
}

TEST(CornerFlow, CornerSizedCircuitOverAchievesOnTrueSilicon) {
  // Size the tree against the worst-case library (deadline mid-range), then
  // evaluate with the true statistical model: the realized mu + 3 sigma must
  // beat the deadline with margin to spare.
  const double kappa = 0.25;
  const Circuit c = make_tree_circuit();
  const CellLibrary corner_lib = scale_library_delays(c.library(), 1.0 + 3.0 * kappa);
  const Circuit corner = clone_with_library(c, corner_lib);

  core::SizingSpec spec;
  spec.sigma_model = {0.02, 0.0};  // smoothing only
  spec.objective = core::Objective::min_area();
  const ssta::DelayCalculator probe(corner, {0.0, 0.0});
  std::vector<double> s(static_cast<std::size_t>(corner.num_nodes()), spec.max_speed);
  const double lo = ssta::run_ssta(probe, s).circuit_delay.mu;
  std::fill(s.begin(), s.end(), 1.0);
  const double hi = ssta::run_ssta(probe, s).circuit_delay.mu;
  const double deadline = 0.5 * (lo + hi);
  spec.delay_constraint = core::DelayConstraint::at_most(deadline);

  core::SizerOptions opt;
  opt.method = core::Method::kReducedSpace;
  const core::SizingResult r = core::Sizer(corner, spec).run(opt);
  ASSERT_TRUE(r.converged) << r.status;

  const ssta::DelayCalculator true_calc(c, {kappa, 0.0});
  const stat::NormalRV truth = ssta::run_ssta(true_calc, r.speed).circuit_delay;
  EXPECT_LT(truth.quantile_offset(3.0), deadline);
  // ...and by a wide margin: that gap is the corner pessimism.
  EXPECT_LT(truth.quantile_offset(3.0), 0.85 * deadline);
}

}  // namespace
}  // namespace statsize::netlist
