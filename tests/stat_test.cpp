// Tests for the normal-distribution primitives and the analytic Clark max
// moments (paper eqs. 10, 12, 13).
//
// Closed-form anchors:
//  * iid operands N(m, s^2): mu_C = m + s/sqrt(pi), var_C = s^2 (1 - 1/pi).
//  * dominant operand (|muA - muB| >> theta): C == the larger operand.
// Statistical anchor: Monte Carlo estimates over an operand grid.

#include "stat/clark.h"
#include "stat/normal.h"

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace statsize::stat {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Normal, PdfKnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 1.0 / std::sqrt(2.0 * kPi), 1e-15);
  EXPECT_NEAR(normal_pdf(1.0), std::exp(-0.5) / std::sqrt(2.0 * kPi), 1e-15);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 0.0);
}

TEST(Normal, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
  EXPECT_NEAR(normal_cdf(-3.0) + normal_cdf(3.0), 1.0, 1e-15);
}

TEST(Normal, CdfTailsAreAccurate) {
  // erfc-based evaluation keeps relative accuracy deep in the lower tail.
  EXPECT_NEAR(normal_cdf(-8.0) / 6.22096057427178e-16, 1.0, 1e-9);
  EXPECT_GT(normal_cdf(-37.0), 0.0);
  EXPECT_EQ(normal_cdf(40.0), 1.0);
}

TEST(Normal, QuantileInvertsCdf) {
  for (double p : {1e-9, 1e-4, 0.02, 0.2, 0.5, 0.7, 0.975, 0.9999, 1.0 - 1e-9}) {
    const double x = normal_quantile(p);
    EXPECT_NEAR(normal_cdf(x), p, 1e-12) << "p=" << p;
  }
}

TEST(Normal, QuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-14);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-10);
  EXPECT_NEAR(normal_quantile(0.9986501019683699), 3.0, 1e-9);
}

TEST(Normal, QuantileEdgeCases) {
  EXPECT_TRUE(std::isinf(normal_quantile(0.0)));
  EXPECT_TRUE(std::isinf(normal_quantile(1.0)));
  EXPECT_LT(normal_quantile(0.0), 0.0);
  EXPECT_GT(normal_quantile(1.0), 0.0);
}

TEST(NormalRV, AdditionMatchesEq4) {
  const NormalRV a{3.0, 4.0};
  const NormalRV b{5.0, 9.0};
  const NormalRV c = add(a, b);
  EXPECT_DOUBLE_EQ(c.mu, 8.0);
  EXPECT_DOUBLE_EQ(c.var, 13.0);
  EXPECT_DOUBLE_EQ(c.sigma(), std::sqrt(13.0));
}

TEST(NormalRV, QuantileOffsetYieldLevels) {
  // The paper's yield statement (sec. 4): mu -> 50%, mu+sigma -> 84.1%,
  // mu+3sigma -> 99.8%.
  const NormalRV d{100.0, 4.0};
  EXPECT_NEAR(d.cdf(d.quantile_offset(0.0)), 0.50, 1e-12);
  EXPECT_NEAR(d.cdf(d.quantile_offset(1.0)), 0.841, 5e-4);
  EXPECT_NEAR(d.cdf(d.quantile_offset(3.0)), 0.9987, 5e-4);
}

// ---------------------------------------------------------------------------
// Clark max: closed-form anchors.
// ---------------------------------------------------------------------------

TEST(ClarkMax, IidOperandsClosedForm) {
  for (double m : {-4.0, 0.0, 2.5, 100.0}) {
    for (double s : {0.1, 1.0, 3.0}) {
      const NormalRV a = NormalRV::from_sigma(m, s);
      const NormalRV c = clark_max(a, a);
      EXPECT_NEAR(c.mu, m + s / std::sqrt(kPi), 1e-10) << m << " " << s;
      EXPECT_NEAR(c.var, s * s * (1.0 - 1.0 / kPi), 1e-10) << m << " " << s;
    }
  }
}

TEST(ClarkMax, IsSymmetric) {
  const NormalRV a{1.0, 0.5};
  const NormalRV b{2.0, 2.0};
  const NormalRV ab = clark_max(a, b);
  const NormalRV ba = clark_max(b, a);
  EXPECT_NEAR(ab.mu, ba.mu, 1e-14);
  EXPECT_NEAR(ab.var, ba.var, 1e-14);
}

TEST(ClarkMax, DominantOperandWins) {
  const NormalRV a{100.0, 1.0};
  const NormalRV b{0.0, 1.0};
  const NormalRV c = clark_max(a, b);
  EXPECT_NEAR(c.mu, 100.0, 1e-12);
  EXPECT_NEAR(c.var, 1.0, 1e-12);
}

TEST(ClarkMax, MeanDominatesBothOperands) {
  // E[max(A,B)] >= max(E[A], E[B]) by Jensen applied to the convex max.
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> mu_d(-10.0, 10.0);
  std::uniform_real_distribution<double> s_d(0.05, 5.0);
  for (int i = 0; i < 200; ++i) {
    const NormalRV a = NormalRV::from_sigma(mu_d(rng), s_d(rng));
    const NormalRV b = NormalRV::from_sigma(mu_d(rng), s_d(rng));
    const NormalRV c = clark_max(a, b);
    EXPECT_GE(c.mu, std::max(a.mu, b.mu) - 1e-12);
    EXPECT_GE(c.var, -1e-12);
  }
}

TEST(ClarkMax, NoCancellationAtLargeMeans) {
  // mu ~ 1e6 with sigma ~ 1: the centered evaluation must keep full accuracy
  // (naive E[C^2]-mu^2 would lose ~12 digits here).
  const double big = 1e6;
  const NormalRV a = NormalRV::from_sigma(big, 1.0);
  const NormalRV c = clark_max(a, a);
  EXPECT_NEAR(c.mu - big, 1.0 / std::sqrt(kPi), 1e-9);
  EXPECT_NEAR(c.var, 1.0 - 1.0 / kPi, 1e-9);
}

TEST(ClarkMax, ShiftInvariance) {
  // max(A+d, B+d) = max(A,B)+d: mean shifts, variance unchanged.
  const NormalRV a{2.0, 1.5};
  const NormalRV b{3.0, 0.5};
  const NormalRV c0 = clark_max(a, b);
  const double d = 17.25;
  const NormalRV c1 = clark_max(add(a, d), add(b, d));
  EXPECT_NEAR(c1.mu, c0.mu + d, 1e-10);
  EXPECT_NEAR(c1.var, c0.var, 1e-10);
}

TEST(ClarkMax, DegenerateBothDeterministic) {
  const NormalRV a{3.0, 0.0};
  const NormalRV b{5.0, 0.0};
  const NormalRV c = clark_max(a, b);
  EXPECT_DOUBLE_EQ(c.mu, 5.0);
  EXPECT_DOUBLE_EQ(c.var, 0.0);
}

TEST(ClarkMax, DegenerateTieAveragesVariance) {
  const NormalRV a{3.0, 0.0};
  const NormalRV b{3.0, 0.0};
  const NormalRV c = clark_max(a, b);
  EXPECT_DOUBLE_EQ(c.mu, 3.0);
  EXPECT_DOUBLE_EQ(c.var, 0.0);
}

TEST(ClarkMax, OneDeterministicOperand) {
  // max(const 0, N(0,1)) is the rectified normal-ish mix; Clark still applies
  // since theta = 1 > 0. Known: mu = phi(0) = 1/sqrt(2 pi).
  const NormalRV a{0.0, 0.0};
  const NormalRV b{0.0, 1.0};
  const NormalRV c = clark_max(a, b);
  EXPECT_NEAR(c.mu, 1.0 / std::sqrt(2.0 * kPi), 1e-12);
  // var = (0+0)*0.5 + (1+0)*0.5 - mu^2 = 0.5 - 1/(2 pi)
  EXPECT_NEAR(c.var, 0.5 - 1.0 / (2.0 * kPi), 1e-12);
}

TEST(ClarkMax, FoldMatchesManualChain) {
  const std::vector<NormalRV> rvs = {{1.0, 0.2}, {1.5, 0.3}, {0.5, 0.1}, {1.4, 0.4}};
  const NormalRV manual =
      clark_max(clark_max(clark_max(rvs[0], rvs[1]), rvs[2]), rvs[3]);
  const NormalRV folded = clark_max_fold(rvs.data(), 4);
  EXPECT_DOUBLE_EQ(folded.mu, manual.mu);
  EXPECT_DOUBLE_EQ(folded.var, manual.var);
}

TEST(ClarkMax, FoldSingleElementIsIdentity) {
  const NormalRV a{2.0, 0.7};
  const NormalRV c = clark_max_fold(&a, 1);
  EXPECT_DOUBLE_EQ(c.mu, a.mu);
  EXPECT_DOUBLE_EQ(c.var, a.var);
}

// ---------------------------------------------------------------------------
// Monte Carlo validation sweep (parameterized): analytic moments must agree
// with sampled moments of max(A, B) to MC accuracy. This is experiment E4 in
// miniature, pinned as a regression test.
// ---------------------------------------------------------------------------

struct OperandCase {
  double mu_a, sigma_a, mu_b, sigma_b;
};

class ClarkVsMonteCarlo : public ::testing::TestWithParam<OperandCase> {};

TEST_P(ClarkVsMonteCarlo, MomentsAgree) {
  const OperandCase& p = GetParam();
  const NormalRV a = NormalRV::from_sigma(p.mu_a, p.sigma_a);
  const NormalRV b = NormalRV::from_sigma(p.mu_b, p.sigma_b);
  const NormalRV c = clark_max(a, b);

  std::mt19937_64 rng(12345);
  std::normal_distribution<double> da(p.mu_a, p.sigma_a);
  std::normal_distribution<double> db(p.mu_b, p.sigma_b);
  const int n = 400000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double m = std::max(da(rng), db(rng));
    sum += m;
    sum2 += m * m;
  }
  const double mc_mu = sum / n;
  const double mc_var = sum2 / n - mc_mu * mc_mu;
  const double sigma_max = std::max(p.sigma_a, p.sigma_b);
  // MC standard error of the mean ~ sigma/sqrt(n); allow 5 standard errors.
  EXPECT_NEAR(c.mu, mc_mu, 5.0 * sigma_max / std::sqrt(double(n)));
  EXPECT_NEAR(c.var, mc_var, 0.02 * sigma_max * sigma_max + 5e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ClarkVsMonteCarlo,
    ::testing::Values(OperandCase{0.0, 1.0, 0.0, 1.0},     // iid
                      OperandCase{0.0, 1.0, 0.5, 1.0},     // small gap
                      OperandCase{0.0, 1.0, 3.0, 1.0},     // large gap
                      OperandCase{0.0, 0.2, 0.0, 2.0},     // very different sigmas
                      OperandCase{5.0, 0.5, 4.0, 1.5},     // mixed
                      OperandCase{10.0, 2.0, 10.0, 0.1},   // tie w/ asym sigma
                      OperandCase{-3.0, 1.0, 2.0, 0.3}));  // dominated

// Variance of the max never exceeds the sum of operand variances, and the
// mean never exceeds max(muA, muB) + theta (a crude union-type bound that
// catches sign errors).
class ClarkBounds : public ::testing::TestWithParam<int> {};

TEST_P(ClarkBounds, RandomizedInvariants) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> mu_d(-50.0, 50.0);
  std::uniform_real_distribution<double> s_d(0.01, 10.0);
  for (int i = 0; i < 500; ++i) {
    const NormalRV a = NormalRV::from_sigma(mu_d(rng), s_d(rng));
    const NormalRV b = NormalRV::from_sigma(mu_d(rng), s_d(rng));
    const NormalRV c = clark_max(a, b);
    const double theta = std::sqrt(a.var + b.var);
    EXPECT_LE(c.mu, std::max(a.mu, b.mu) + theta + 1e-10);
    EXPECT_LE(c.var, a.var + b.var + 1e-10);
    EXPECT_GE(c.var, 0.0);
    EXPECT_TRUE(std::isfinite(c.mu));
    EXPECT_TRUE(std::isfinite(c.var));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClarkBounds, ::testing::Range(1, 9));

// The full-space sizing formulation lower-bounds fold-variance variables by
// 0.5 (1 - 1/pi) * min(varA, varB) (core/full_space.cpp). Verify the
// underlying property Var(max) >= (1 - 1/pi) * min(varA, varB) empirically
// over a wide operand range — the symmetric case attains it.
class ClarkMaxShrinkBound : public ::testing::TestWithParam<int> {};

TEST_P(ClarkMaxShrinkBound, VarianceShrinkIsBounded) {
  std::mt19937 rng(GetParam() * 31 + 5);
  std::uniform_real_distribution<double> mu_d(-30.0, 30.0);
  std::uniform_real_distribution<double> v_d(1e-3, 30.0);
  const double shrink = 1.0 - 1.0 / kPi;
  for (int i = 0; i < 2000; ++i) {
    const NormalRV a{mu_d(rng), v_d(rng)};
    const NormalRV b{mu_d(rng), v_d(rng)};
    const NormalRV c = clark_max(a, b);
    ASSERT_GE(c.var, shrink * std::min(a.var, b.var) - 1e-12)
        << "a=(" << a.mu << "," << a.var << ") b=(" << b.mu << "," << b.var << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClarkMaxShrinkBound, ::testing::Range(0, 6));

}  // namespace
}  // namespace statsize::stat
