// Chaos & crash-safety suite (ctest label `chaos`, DESIGN.md §13): the
// multi-site fault schedule engine, the durable job journal (framing, torn
// tails, injected torn writes), startup recovery replay through a real
// Server (queued re-admission, `interrupted` surfacing, missing-circuit
// errors, terminal jobs pollable across restarts), idempotent submission
// including the duplicate-in-flight race, and the client's deterministic
// seeded backoff against injected accept/read/write faults. Runs in both
// sanitizer configurations of scripts/check.sh.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/fault.h"
#include "serve/client.h"
#include "serve/journal.h"
#include "serve/server.h"
#include "util/json.h"

namespace {

using namespace statsize;
namespace fault = runtime::fault;

// Same embedded c17 as serve_test.cpp so recovery results can be eyeballed
// against that suite's bit-identity checks.
constexpr const char* kC17 = R"(.model c17
.inputs 1GAT 2GAT 3GAT 6GAT 7GAT
.outputs 22GAT 23GAT
.names 1GAT 3GAT 10GAT
0- 1
-0 1
.names 3GAT 6GAT 11GAT
0- 1
-0 1
.names 2GAT 11GAT 16GAT
0- 1
-0 1
.names 11GAT 7GAT 19GAT
0- 1
-0 1
.names 10GAT 16GAT 22GAT
0- 1
-0 1
.names 16GAT 19GAT 23GAT
0- 1
-0 1
.end
)";

std::string job_body(const std::string& key, const std::string& type) {
  return "{\"circuit\": \"" + key + "\", \"type\": \"" + type + "\"}";
}

// ---------------------------------------------------------------------------
// Multi-site fault schedules.
// ---------------------------------------------------------------------------

class FaultScheduleTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm(); }
};

TEST_F(FaultScheduleTest, MultiSiteEntriesCountAndFireIndependently) {
  fault::arm("serve.read:2,cache.evict:1");
  EXPECT_TRUE(fault::armed());

  EXPECT_TRUE(fault::hit(fault::kCacheEvict));   // hit 1 of 1: fires
  EXPECT_FALSE(fault::hit(fault::kCacheEvict));  // already fired: never again
  EXPECT_FALSE(fault::hit(fault::kServeRead));   // hit 1 of 2
  EXPECT_TRUE(fault::hit(fault::kServeRead));    // hit 2 of 2: fires
  EXPECT_FALSE(fault::hit(fault::kServeRead));

  EXPECT_EQ(fault::hits_observed(fault::kServeRead), 3);
  EXPECT_EQ(fault::hits_observed(fault::kCacheEvict), 2);
  EXPECT_EQ(fault::hits_observed(), 5);
  EXPECT_EQ(fault::fires_observed(), 2);
  EXPECT_TRUE(fault::fired(fault::kServeRead));
  EXPECT_TRUE(fault::fired(fault::kCacheEvict));
  EXPECT_FALSE(fault::fired(fault::kServeAccept));  // not armed at all
  EXPECT_FALSE(fault::hit(fault::kServeAccept));
}

TEST_F(FaultScheduleTest, RepeatedSiteKeepsLastEntry) {
  fault::arm("serve.read:5,serve.read:1");
  EXPECT_TRUE(fault::hit(fault::kServeRead));  // last entry (hit 1) wins
}

TEST_F(FaultScheduleTest, InvalidScheduleLeavesPreviousArmingIntact) {
  fault::arm("serve.read:1");
  EXPECT_THROW(fault::arm("serve.read:1,no.such.site:2"), std::invalid_argument);
  EXPECT_THROW(fault::arm("serve.read:0"), std::invalid_argument);
  EXPECT_THROW(fault::arm("serve.read:1,,cache.evict:1"), std::invalid_argument);
  // The bad schedules must not have disturbed the good one.
  EXPECT_TRUE(fault::armed());
  EXPECT_TRUE(fault::hit(fault::kServeRead));
}

TEST_F(FaultScheduleTest, DisarmClearsEverySiteAndCounter) {
  fault::arm("serve.read:1,serve.journal.write:1");
  EXPECT_TRUE(fault::hit(fault::kServeRead));
  fault::disarm();
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::hit(fault::kServeRead));
  EXPECT_FALSE(fault::hit(fault::kServeJournalWrite));
  EXPECT_EQ(fault::hits_observed(), 0);
  EXPECT_EQ(fault::fires_observed(), 0);
}

// ---------------------------------------------------------------------------
// Journal framing, torn tails, injected torn writes.
// ---------------------------------------------------------------------------

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "statsize_chaos_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    fault::disarm();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
};

TEST_F(JournalTest, RecordsRoundTripAcrossReopen) {
  {
    serve::Journal journal({dir_, serve::FsyncPolicy::kAlways});
    EXPECT_TRUE(journal.replay().empty());
    journal.append("{\"kind\": \"start\", \"id\": \"job-000001\"}");
    // Payloads may carry embedded newlines (pretty-printed results); the
    // decimal length in the frame, not the newline, delimits the record.
    journal.append("{\"kind\": \"end\", \"id\": \"job-000001\",\n \"state\": \"done\"}");
    EXPECT_EQ(journal.records_written(), 2);
  }
  serve::Journal reopened({dir_, serve::FsyncPolicy::kNone});
  ASSERT_EQ(reopened.replay().size(), 2u);
  EXPECT_EQ(reopened.truncated_bytes(), 0);
  EXPECT_EQ(reopened.replay()[0].kind, "start");
  EXPECT_EQ(reopened.replay()[0].doc.string_or("id", ""), "job-000001");
  EXPECT_EQ(reopened.replay()[1].kind, "end");
  EXPECT_EQ(reopened.replay()[1].doc.string_or("state", ""), "done");
}

TEST_F(JournalTest, EmptyJournalRecoversToNothing) {
  { serve::Journal journal({dir_, serve::FsyncPolicy::kNone}); }
  serve::Journal reopened({dir_, serve::FsyncPolicy::kNone});
  EXPECT_TRUE(reopened.replay().empty());
  EXPECT_EQ(reopened.truncated_bytes(), 0);
  EXPECT_EQ(reopened.records_written(), 0);
}

TEST_F(JournalTest, TornTailIsTruncatedAndGoodPrefixKept) {
  std::string path;
  {
    serve::Journal journal({dir_, serve::FsyncPolicy::kNone});
    journal.append("{\"kind\": \"start\", \"id\": \"job-000001\"}");
    journal.append("{\"kind\": \"start\", \"id\": \"job-000002\"}");
    path = journal.path();
  }
  // A crash mid-append: a frame header that promises more bytes than exist.
  const std::string torn = "SJ1 999 0123456789abcdef {\"kind\": \"tr";
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << torn;
  }
  serve::Journal reopened({dir_, serve::FsyncPolicy::kNone});
  ASSERT_EQ(reopened.replay().size(), 2u);
  EXPECT_EQ(reopened.truncated_bytes(), static_cast<std::int64_t>(torn.size()));
  // The truncation is physical: a third open sees a clean file.
  serve::Journal again({dir_, serve::FsyncPolicy::kNone});
  EXPECT_EQ(again.replay().size(), 2u);
  EXPECT_EQ(again.truncated_bytes(), 0);
}

TEST_F(JournalTest, ChecksumMismatchStopsReplayAtBadFrame) {
  std::string path;
  {
    serve::Journal journal({dir_, serve::FsyncPolicy::kNone});
    journal.append("{\"kind\": \"start\", \"id\": \"job-000001\"}");
    path = journal.path();
  }
  // Bit-rot the payload of a correctly framed record: length parses, the
  // checksum must catch it.
  const std::string payload = "{\"kind\": \"start\", \"id\": \"job-000002\"}";
  std::ostringstream frame;
  frame << "SJ1 " << payload.size() << " 0000000000000000 " << payload << "\n";
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << frame.str();
  }
  serve::Journal reopened({dir_, serve::FsyncPolicy::kNone});
  ASSERT_EQ(reopened.replay().size(), 1u);
  EXPECT_EQ(reopened.truncated_bytes(), static_cast<std::int64_t>(frame.str().size()));
}

TEST_F(JournalTest, JournalWithOnlyTornTailRecoversToEmpty) {
  std::filesystem::create_directories(dir_);
  const std::string garbage = "SJ1 12 deadbeefdeadbeef {\"ki";
  {
    std::ofstream out(dir_ + "/journal.jsonl", std::ios::binary);
    out << garbage;
  }
  serve::Journal journal({dir_, serve::FsyncPolicy::kNone});
  EXPECT_TRUE(journal.replay().empty());
  EXPECT_EQ(journal.truncated_bytes(), static_cast<std::int64_t>(garbage.size()));
  // The repaired (now empty) journal accepts fresh appends.
  journal.append("{\"kind\": \"start\", \"id\": \"job-000001\"}");
  EXPECT_EQ(journal.records_written(), 1);
}

TEST_F(JournalTest, InjectedTornWriteThrowsAndTailIsRepaired) {
  serve::Journal journal({dir_, serve::FsyncPolicy::kNone});
  {
    fault::ScopedFault torn("serve.journal.write:1");
    EXPECT_THROW(journal.append("{\"kind\": \"start\", \"id\": \"job-000001\"}"),
                 serve::JournalWriteError);
  }
  EXPECT_EQ(journal.records_written(), 0);
  // The next append overwrites the torn prefix; only it survives a reopen.
  journal.append("{\"kind\": \"start\", \"id\": \"job-000002\"}");
  EXPECT_EQ(journal.records_written(), 1);
  serve::Journal reopened({dir_, serve::FsyncPolicy::kNone});
  ASSERT_EQ(reopened.replay().size(), 1u);
  EXPECT_EQ(reopened.replay()[0].doc.string_or("id", ""), "job-000002");
  EXPECT_EQ(reopened.truncated_bytes(), 0);
}

// ---------------------------------------------------------------------------
// Recovery replay through a real Server.
//
// The journals here are hand-framed with the documented record payloads
// (DESIGN.md §13) — the on-disk format is a contract, and writing it from
// the test proves a daemon restart needs nothing but the file.
// ---------------------------------------------------------------------------

class ChaosServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "statsize_chaos_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    fault::disarm();
    if (server_) server_->stop();
    std::filesystem::remove_all(dir_);
  }

  void StartServer() {
    serve::ServerOptions options;
    options.port = 0;
    options.journal_dir = dir_;
    server_ = std::make_unique<serve::Server>(options);
    server_->start();
    client_ = std::make_unique<serve::Client>("127.0.0.1", server_->port());
  }

  void RestartServer() {
    server_->stop();
    server_.reset();
    client_.reset();
    StartServer();
  }

  /// The raw POST /v1/circuits body for c17 — what a `circuit` journal
  /// record carries and replays through the real upload handler.
  static std::string upload_body() {
    return "{\"format\": \"blif\", \"name\": \"c17\", \"text\": \"" +
           util::JsonWriter::escape(kC17) + "\"}";
  }

  static std::string circuit_record() {
    std::ostringstream os;
    util::JsonWriter w(os);
    w.begin_object();
    w.key("kind").value("circuit");
    w.key("body").value(upload_body());
    w.end_object();
    return os.str();
  }

  static std::string admit_record(const std::string& id, const std::string& circuit_key,
                                  const std::string& idempotency_key = "") {
    std::ostringstream os;
    util::JsonWriter w(os);
    w.begin_object();
    w.key("kind").value("admit");
    w.key("id").value(id);
    w.key("type").value("ssta");
    w.key("circuit").value(circuit_key);
    w.key("idempotency_key").value(idempotency_key);
    w.key("params").begin_object().end_object();  // parser fills CLI defaults
    w.end_object();
    return os.str();
  }

  static std::string start_record(const std::string& id) {
    return "{\"kind\": \"start\", \"id\": \"" + id + "\"}";
  }

  static std::string end_record(const std::string& id, const std::string& state,
                                const std::string& result) {
    std::ostringstream os;
    util::JsonWriter w(os);
    w.begin_object();
    w.key("kind").value("end");
    w.key("id").value(id);
    w.key("state").value(state);
    w.key("result").value(result);
    w.key("error").value("");
    w.end_object();
    return os.str();
  }

  std::string c17_key() const { return serve::circuit_key("blif", kC17); }

  std::string dir_;
  std::unique_ptr<serve::Server> server_;
  std::unique_ptr<serve::Client> client_;
};

TEST_F(ChaosServeTest, QueuedAtCrashJobsAreReadmittedInOriginalOrder) {
  {
    serve::Journal journal({dir_, serve::FsyncPolicy::kNone});
    journal.append(circuit_record());
    journal.append(admit_record("job-000001", c17_key()));
    journal.append(admit_record("job-000002", c17_key()));
  }
  StartServer();
  EXPECT_EQ(server_->metrics().jobs_recovered.value(), 2);
  EXPECT_EQ(server_->metrics().journal_records_replayed.value(), 3);

  // Both recovered jobs run to completion under their original ids.
  util::JsonValue first = client_->wait("job-000001");
  util::JsonValue second = client_->wait("job-000002");
  EXPECT_EQ(first.string_or("state", ""), "done") << first.string_or("error", "");
  EXPECT_EQ(second.string_or("state", ""), "done") << second.string_or("error", "");
  // FIFO re-admission: job-000001 started no later than job-000002.
  const std::shared_ptr<serve::Job> j1 = server_->scheduler().get("job-000001");
  const std::shared_ptr<serve::Job> j2 = server_->scheduler().get("job-000002");
  ASSERT_TRUE(j1 && j2);
  double s1, s2;
  {
    std::lock_guard<std::mutex> lock(j1->mu);
    s1 = j1->started_ms;
  }
  {
    std::lock_guard<std::mutex> lock(j2->mu);
    s2 = j2->started_ms;
  }
  EXPECT_LE(s1, s2);

  // Id allocation resumes past the recovered ids.
  const std::string key = client_->upload(kC17, "blif", "c17");
  EXPECT_EQ(key, c17_key());  // replayed upload produced the same content hash
  EXPECT_EQ(client_->submit(job_body(key, "ssta")), "job-000003");
}

TEST_F(ChaosServeTest, RunningAtCrashJobSurfacesAsInterrupted) {
  {
    serve::Journal journal({dir_, serve::FsyncPolicy::kNone});
    journal.append(circuit_record());
    journal.append(admit_record("job-000001", c17_key(), "retry-me"));
    journal.append(start_record("job-000001"));
  }
  StartServer();
  EXPECT_EQ(server_->metrics().jobs_interrupted.value(), 1);

  serve::ApiResult poll = client_->job("job-000001");
  ASSERT_EQ(poll.status, 200) << poll.body;
  util::JsonValue doc = poll.json();
  EXPECT_EQ(doc.string_or("state", ""), "interrupted");
  EXPECT_TRUE(doc.bool_or("retryable", false));
  EXPECT_NE(doc.string_or("error", "").find("re-submit"), std::string::npos);

  // Interrupted is retryable: the same Idempotency-Key starts a FRESH job
  // instead of deduplicating against the dead one.
  serve::ApiResult retry =
      client_->request("POST", "/v1/jobs", job_body(c17_key(), "ssta"),
                       {{"Idempotency-Key", "retry-me"}});
  ASSERT_EQ(retry.status, 202) << retry.body;
  util::JsonValue admitted = retry.json();
  EXPECT_FALSE(admitted.bool_or("deduplicated", true));
  EXPECT_EQ(admitted.string_or("id", ""), "job-000002");
  EXPECT_EQ(client_->wait("job-000002").string_or("state", ""), "done");
}

TEST_F(ChaosServeTest, TerminalJobsStayPollableAcrossRestart) {
  {
    serve::Journal journal({dir_, serve::FsyncPolicy::kNone});
    journal.append(admit_record("job-000001", "c-gone"));
    journal.append(start_record("job-000001"));
    journal.append(end_record("job-000001", "done", "{\"mu\": 1.5}"));
  }
  // No circuit record at all: a terminal job needs none to stay pollable.
  StartServer();
  serve::ApiResult poll = client_->job("job-000001");
  ASSERT_EQ(poll.status, 200) << poll.body;
  util::JsonValue doc = poll.json();
  EXPECT_EQ(doc.string_or("state", ""), "done");
  const util::JsonValue* result = doc.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->number_or("mu", 0.0), 1.5);
}

TEST_F(ChaosServeTest, QueuedJobWithMissingCircuitFailsWithNamedError) {
  {
    serve::Journal journal({dir_, serve::FsyncPolicy::kNone});
    journal.append(admit_record("job-000001", "c-0000000000000bad"));
  }
  StartServer();
  serve::ApiResult poll = client_->job("job-000001");
  ASSERT_EQ(poll.status, 200) << poll.body;
  util::JsonValue doc = poll.json();
  EXPECT_EQ(doc.string_or("state", ""), "failed");
  const std::string error = doc.string_or("error", "");
  EXPECT_NE(error.find("c-0000000000000bad"), std::string::npos) << error;
  EXPECT_NE(error.find("re-upload"), std::string::npos) << error;
}

TEST_F(ChaosServeTest, LiveWorkAndGracefulStopSurviveRestart) {
  StartServer();
  const std::string key = client_->upload(kC17, "blif", "c17");
  const std::string done_id = client_->submit(job_body(key, "ssta"));
  util::JsonValue done = client_->wait(done_id);
  ASSERT_EQ(done.string_or("state", ""), "done");
  const double mu = done.find("result")->number_or("mu", 0.0);

  RestartServer();
  // The finished job: same id, same state, bit-identical result after replay.
  util::JsonValue recovered = client_->job(done_id).json();
  EXPECT_EQ(recovered.string_or("state", ""), "done");
  EXPECT_EQ(recovered.find("result")->number_or("mu", -1.0), mu);
  // The replayed upload is already cached: re-upload dedups to the same key.
  EXPECT_EQ(client_->upload(kC17, "blif", "c17"), key);
}

TEST_F(ChaosServeTest, ExecutorCrashFaultYieldsInterruptedAndRetrySucceeds) {
  StartServer();
  const std::string key = client_->upload(kC17, "blif", "c17");
  fault::arm("serve.executor.crash:1");
  serve::ApiResult first = client_->request("POST", "/v1/jobs", job_body(key, "ssta"),
                                            {{"Idempotency-Key", "crash-retry"}});
  ASSERT_EQ(first.status, 202) << first.body;
  const std::string id = first.json().string_or("id", "");
  util::JsonValue doc = client_->wait(id);
  EXPECT_EQ(doc.string_or("state", ""), "interrupted");
  EXPECT_TRUE(doc.bool_or("retryable", false));
  EXPECT_EQ(server_->metrics().jobs_interrupted.value(), 1);
  fault::disarm();

  serve::ApiResult retry = client_->request("POST", "/v1/jobs", job_body(key, "ssta"),
                                            {{"Idempotency-Key", "crash-retry"}});
  ASSERT_EQ(retry.status, 202) << retry.body;
  const std::string retry_id = retry.json().string_or("id", "");
  EXPECT_NE(retry_id, id);
  EXPECT_EQ(client_->wait(retry_id).string_or("state", ""), "done");
}

// ---------------------------------------------------------------------------
// Idempotent submission.
// ---------------------------------------------------------------------------

TEST_F(ChaosServeTest, IdempotencyKeyDeduplicatesRetries) {
  StartServer();
  const std::string key = client_->upload(kC17, "blif", "c17");
  serve::ApiResult first = client_->request("POST", "/v1/jobs", job_body(key, "ssta"),
                                            {{"Idempotency-Key", "k-1"}});
  ASSERT_EQ(first.status, 202) << first.body;
  const std::string id = first.json().string_or("id", "");
  // The job document echoes the key it was admitted under.
  EXPECT_EQ(client_->job(id).json().string_or("idempotency_key", ""), "k-1");

  // The retry answers 200 (not 202) from the original admission.
  serve::ApiResult again = client_->request("POST", "/v1/jobs", job_body(key, "ssta"),
                                            {{"Idempotency-Key", "k-1"}});
  ASSERT_EQ(again.status, 200) << again.body;
  EXPECT_TRUE(again.json().bool_or("deduplicated", false));
  EXPECT_EQ(again.json().string_or("id", ""), id);
  EXPECT_EQ(server_->metrics().idempotent_dedup_hits.value(), 1);
  EXPECT_EQ(server_->metrics().jobs_submitted.value(), 1);

  // Batches own their retries client-side: a batch with a key is a 400.
  serve::ApiResult batch = client_->request("POST", "/v1/jobs",
                                            "[" + job_body(key, "ssta") + "]",
                                            {{"Idempotency-Key", "k-2"}});
  EXPECT_EQ(batch.status, 400) << batch.body;
}

TEST_F(ChaosServeTest, ConcurrentDuplicateSubmissionsAdmitExactlyOneJob) {
  StartServer();
  const std::string key = client_->upload(kC17, "blif", "c17");
  const std::string body = job_body(key, "ssta");

  std::vector<std::string> ids(4);
  std::vector<std::thread> racers;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    racers.emplace_back([&, i] {
      serve::Client racer("127.0.0.1", server_->port());
      serve::ApiResult result = racer.request("POST", "/v1/jobs", body,
                                              {{"Idempotency-Key", "race"}});
      ids[i] = result.json().string_or("id", "");
    });
  }
  for (std::thread& t : racers) t.join();

  for (const std::string& id : ids) EXPECT_EQ(id, ids[0]);
  EXPECT_EQ(server_->metrics().jobs_submitted.value(), 1);
  EXPECT_EQ(server_->metrics().idempotent_dedup_hits.value(),
            static_cast<std::int64_t>(ids.size()) - 1);
  EXPECT_EQ(client_->wait(ids[0]).string_or("state", ""), "done");
}

// ---------------------------------------------------------------------------
// Client backoff determinism and retry behaviour under injected IO faults.
// ---------------------------------------------------------------------------

TEST(ClientBackoffTest, ScheduleIsDeterministicCappedAndSeedSensitive) {
  serve::ClientOptions options;
  options.backoff_ms = 100.0;
  options.backoff_cap_ms = 800.0;
  options.jitter_seed = 42;

  const std::vector<double> a = serve::Client::backoff_schedule(options, 8);
  const std::vector<double> b = serve::Client::backoff_schedule(options, 8);
  ASSERT_EQ(a.size(), 8u);
  EXPECT_EQ(a, b);  // bit-identical: same seed, same schedule

  for (std::size_t attempt = 0; attempt < a.size(); ++attempt) {
    const double envelope =
        std::min(options.backoff_cap_ms, options.backoff_ms * double(1u << attempt));
    EXPECT_GE(a[attempt], 0.5 * envelope) << "attempt " << attempt;
    EXPECT_LT(a[attempt], envelope) << "attempt " << attempt;
  }

  serve::ClientOptions reseeded = options;
  reseeded.jitter_seed = 43;
  EXPECT_NE(serve::Client::backoff_schedule(reseeded, 8), a);
}

class ClientFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    serve::ServerOptions options;
    options.port = 0;
    server_ = std::make_unique<serve::Server>(options);
    server_->start();
  }
  void TearDown() override {
    fault::disarm();
    server_->stop();
  }

  serve::ClientOptions fast_retries(int retries) {
    serve::ClientOptions options;
    options.retries = retries;
    options.backoff_ms = 1.0;  // keep the suite fast; schedule shape is
    options.backoff_cap_ms = 4.0;  // covered by ClientBackoffTest
    return options;
  }

  std::unique_ptr<serve::Server> server_;
};

TEST_F(ClientFaultTest, RetriesThroughTornResponseWrite) {
  serve::Client client("127.0.0.1", server_->port(), fast_retries(3));
  fault::arm("serve.write.partial:1");
  serve::ApiResult stats = client.stats();
  EXPECT_EQ(stats.status, 200) << stats.body;
  EXPECT_GE(client.retries_used(), 1);
  EXPECT_TRUE(fault::fired(fault::kServeWritePartial));
}

TEST_F(ClientFaultTest, SurvivesAcceptResetAndDroppedRead) {
  serve::Client client("127.0.0.1", server_->port(), fast_retries(3));
  fault::arm("serve.accept:1");
  EXPECT_EQ(client.stats().status, 200);
  EXPECT_TRUE(fault::fired(fault::kServeAccept));
  fault::disarm();

  fault::arm("serve.read:1");
  EXPECT_EQ(client.stats().status, 200);
  EXPECT_TRUE(fault::fired(fault::kServeRead));
}

TEST_F(ClientFaultTest, StatsExposeRobustnessCounters) {
  serve::Client client("127.0.0.1", server_->port(), fast_retries(3));
  fault::arm("serve.read:1");
  ASSERT_EQ(client.stats().status, 200);

  // Still armed: the robustness section reads the live fault counters
  // (disarm() would reset them).
  util::JsonValue doc = client.stats().json();
  const util::JsonValue* robustness = doc.find("robustness");
  ASSERT_NE(robustness, nullptr) << "stats JSON lost its robustness section";
  EXPECT_GE(robustness->int_or("faults_injected", -1), 1);
  EXPECT_GE(robustness->int_or("fault_hits_observed", -1), 1);
  EXPECT_EQ(robustness->int_or("journal_records_written", -1), 0);
  EXPECT_EQ(robustness->int_or("jobs_interrupted", -1), 0);
}

}  // namespace
