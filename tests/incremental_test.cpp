// Incremental (ECO) timing tests — DESIGN.md §12.
//
// Covers the whole edit→invalidate→repropagate stack: the TimingView mutation
// protocol (update_node_params / epoch / dirty set), the FinalizedMutationError
// contract on the Circuit side, the IncrementalEngine's bit-identity pin
// against full run_ssta recompute, the ReducedEvaluator's persistent forward
// tape, and the Sizer warm-start path. The property suite drives random mixed
// edit sequences across --jobs {1,4} x serial cutoff {0, advised} and demands
// EXPECT_EQ (bitwise) agreement of arrivals, Tmax, slacks, and gradients with
// a from-scratch recompute at every step.

#include "ssta/incremental.h"

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/reduced_space.h"
#include "core/sizer.h"
#include "netlist/generators.h"
#include "netlist/timing_view.h"
#include "runtime/runtime.h"
#include "ssta/slack.h"
#include "ssta/ssta.h"

namespace statsize {
namespace {

using netlist::Circuit;
using netlist::NodeId;
using netlist::NodeParams;
using netlist::TimingView;
using ssta::IncrementalEngine;
using ssta::TimingEdit;

Circuit small_dag(int gates, std::uint64_t seed) {
  netlist::RandomDagParams p;
  p.num_gates = gates;
  p.num_inputs = 16 + gates / 20;
  p.depth = 8 + gates / 40;
  p.seed = seed;
  return netlist::make_random_dag(p);
}

/// Gate wired twice to the same driver: d's fanout has two edges into g, so a
/// c_in edit on g must rewrite both per-edge pin caps.
Circuit double_edge_circuit() {
  Circuit c(netlist::CellLibrary::standard());
  const NodeId a = c.add_input("a");
  const NodeId d = c.add_gate(0, {a}, "d");
  const NodeId g = c.add_gate(2, {d, d}, "g");  // NAND2 fed twice by d
  c.mark_output(g);
  c.finalize();
  return c;
}

std::vector<double> unit_speed(const TimingView& view) {
  return std::vector<double>(static_cast<std::size_t>(view.num_nodes()), 1.0);
}

/// From-scratch reference on the engine's own (edited) view and speeds.
ssta::TimingReport fresh_report(const IncrementalEngine& engine) {
  const ssta::DelayCalculator calc(engine.view(), engine.sigma_model());
  return ssta::run_ssta(engine.view(), calc.all_delays(engine.speed()));
}

void expect_rv_eq(const stat::NormalRV& a, const stat::NormalRV& b) {
  EXPECT_EQ(a.mu, b.mu);
  EXPECT_EQ(a.var, b.var);
  EXPECT_FALSE(std::isnan(a.mu));
}

void expect_engine_matches_full(const IncrementalEngine& engine) {
  const ssta::TimingReport fresh = fresh_report(engine);
  ASSERT_EQ(fresh.arrival.size(), engine.arrivals().size());
  for (std::size_t i = 0; i < fresh.arrival.size(); ++i) {
    expect_rv_eq(fresh.arrival[i], engine.arrivals()[i]);
  }
  expect_rv_eq(fresh.circuit_delay, engine.tmax());
}

// ---------------------------------------------------------------------------
// Satellite: mutating a finalized Circuit is a named error.

TEST(FinalizedMutation, StructuralEditsAfterFinalizeThrowNamedError) {
  Circuit c(netlist::CellLibrary::standard());
  const NodeId a = c.add_input("a");
  const NodeId g = c.add_gate(0, {a}, "g");
  c.mark_output(g);
  c.finalize();

  EXPECT_THROW(c.add_input("b"), netlist::FinalizedMutationError);
  EXPECT_THROW(c.add_gate(0, {a}, "h"), netlist::FinalizedMutationError);
  EXPECT_THROW(c.mark_output(a), netlist::FinalizedMutationError);
  try {
    c.add_input("b");
    FAIL() << "expected FinalizedMutationError";
  } catch (const netlist::FinalizedMutationError& e) {
    // The message must route the caller to the sanctioned post-finalize path.
    EXPECT_NE(std::string(e.what()).find("update_node_params"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// TimingView mutation protocol.

TEST(TimingViewEdit, UpdateNodeParamsRewritesConstantsAndPinCaps) {
  const Circuit c = small_dag(40, 7);
  TimingView view = c.view();  // value copy; the snapshot stays pristine
  const std::vector<NodeId>& gates = view.gates_in_topo_order();
  const NodeId g = gates[gates.size() / 2];

  NodeParams p = view.node_params(g);
  p.t_int *= 1.25;
  p.c *= 0.8;
  p.c_in *= 1.5;
  p.area *= 2.0;
  view.update_node_params(g, p);

  EXPECT_EQ(view.t_int(g), p.t_int);
  EXPECT_EQ(view.drive_c(g), p.c);
  EXPECT_EQ(view.c_in(g), p.c_in);
  EXPECT_EQ(view.area(g), p.area);
  // Every fanin->g fanout edge now carries the new pin cap.
  for (NodeId driver : view.fanins(g)) {
    const netlist::NodeSpan outs = view.fanouts(driver);
    const double* cin = view.fanout_cin(driver);
    for (std::size_t e = 0; e < outs.size(); ++e) {
      if (outs[e] == g) EXPECT_EQ(cin[e], p.c_in);
    }
  }
  // The Circuit's own compiled snapshot is untouched.
  EXPECT_NE(c.view().t_int(g), p.t_int);
  EXPECT_EQ(c.view().epoch(), 0u);
}

TEST(TimingViewEdit, DuplicateEdgeGetsBothPinCapsRewritten) {
  const Circuit c = double_edge_circuit();
  TimingView view = c.view();
  const NodeId d = view.gates_in_topo_order()[0];
  const NodeId g = view.gates_in_topo_order()[1];
  ASSERT_EQ(view.fanouts(d).size(), 2u);

  NodeParams p = view.node_params(g);
  p.c_in = 3.5;
  view.update_node_params(g, p);

  const double* cin = view.fanout_cin(d);
  EXPECT_EQ(cin[0], 3.5);
  EXPECT_EQ(cin[1], 3.5);
  // Both edges contribute: load = static + 2 * c_in * S_g.
  const std::vector<double> speed(static_cast<std::size_t>(view.num_nodes()), 2.0);
  EXPECT_EQ(view.load_capacitance(d, speed.data()),
            view.static_load(d) + 3.5 * 2.0 + 3.5 * 2.0);
}

TEST(TimingViewEdit, EpochAndDirtySetTrackEditsDeduplicated) {
  const Circuit c = small_dag(30, 11);
  TimingView view = c.view();
  const std::vector<NodeId>& gates = view.gates_in_topo_order();
  EXPECT_EQ(view.epoch(), 0u);
  EXPECT_TRUE(view.dirty_nodes().empty());

  NodeParams p0 = view.node_params(gates[0]);
  p0.t_int *= 1.1;
  view.update_node_params(gates[0], p0);
  NodeParams p1 = view.node_params(gates[1]);
  p1.c_in *= 1.1;
  view.update_node_params(gates[1], p1);
  p0.t_int *= 1.1;
  view.update_node_params(gates[0], p0);  // re-edit: epoch bumps, no dup

  EXPECT_EQ(view.epoch(), 3u);
  ASSERT_EQ(view.dirty_nodes().size(), 2u);
  EXPECT_EQ(view.dirty_nodes()[0], gates[0]);  // first-edit order
  EXPECT_EQ(view.dirty_nodes()[1], gates[1]);

  view.clear_dirty();
  EXPECT_TRUE(view.dirty_nodes().empty());
  EXPECT_EQ(view.epoch(), 3u);  // epoch is monotone, not reset
}

TEST(TimingViewEdit, InvalidEditsThrowAndLeaveViewUnchanged) {
  const Circuit c = small_dag(30, 13);
  TimingView view = c.view();
  const NodeId input = view.topo_order()[0];
  const NodeId g = view.gates_in_topo_order()[0];
  const NodeParams before = view.node_params(g);

  EXPECT_THROW(view.update_node_params(input, NodeParams{1, 1, 1, 1}), std::invalid_argument);
  NodeParams bad = before;
  bad.t_int = std::nan("");
  EXPECT_THROW(view.update_node_params(g, bad), std::invalid_argument);

  EXPECT_EQ(view.epoch(), 0u);
  EXPECT_TRUE(view.dirty_nodes().empty());
  EXPECT_EQ(view.t_int(g), before.t_int);
}

// ---------------------------------------------------------------------------
// IncrementalEngine unit behaviour.

TEST(IncrementalEngine, ConstructorValidatesSpeed) {
  const Circuit c = small_dag(30, 17);
  std::vector<double> wrong(static_cast<std::size_t>(c.num_nodes()) - 1, 1.0);
  EXPECT_THROW(IncrementalEngine(c.view(), wrong), std::invalid_argument);

  std::vector<double> nonpos = unit_speed(c.view());
  nonpos[static_cast<std::size_t>(c.view().gates_in_topo_order()[0])] = 0.0;
  EXPECT_THROW(IncrementalEngine(c.view(), nonpos), std::invalid_argument);
}

TEST(IncrementalEngine, BatchIsValidatedBeforeAnyStateChanges) {
  const Circuit c = small_dag(30, 19);
  IncrementalEngine engine(c.view(), unit_speed(c.view()));
  const stat::NormalRV before = engine.tmax();
  const NodeId g = c.view().gates_in_topo_order()[0];
  const NodeId input = c.view().topo_order()[0];

  // A good edit followed by a bad one: the whole batch must be rejected
  // with no propagation and no state change.
  const std::vector<TimingEdit> batch{TimingEdit::set_speed(g, 2.0),
                                      TimingEdit::set_speed(input, 2.0)};
  EXPECT_THROW(engine.apply_edits(batch), std::invalid_argument);
  expect_rv_eq(engine.tmax(), before);
  EXPECT_EQ(engine.speed()[static_cast<std::size_t>(g)], 1.0);

  EXPECT_THROW(engine.apply_edits({TimingEdit::set_speed(g, -1.0)}), std::invalid_argument);
  EXPECT_THROW(engine.apply_edits({TimingEdit::set_speed(g, std::nan(""))}),
               std::invalid_argument);
}

TEST(IncrementalEngine, NoOpEditPropagatesNothing) {
  const Circuit c = small_dag(30, 23);
  IncrementalEngine engine(c.view(), unit_speed(c.view()));
  const stat::NormalRV before = engine.tmax();
  const NodeId g = c.view().gates_in_topo_order()[0];

  engine.apply_edits({TimingEdit::set_speed(g, 1.0)});  // bitwise-equal value
  EXPECT_EQ(engine.last_arrival_recomputes(), 0u);
  expect_rv_eq(engine.tmax(), before);
}

TEST(IncrementalEngine, SpeedAndParamsEditsMatchFullRecompute) {
  const Circuit c = small_dag(60, 29);
  IncrementalEngine engine(c.view(), unit_speed(c.view()));
  const std::vector<NodeId>& gates = c.view().gates_in_topo_order();

  const stat::NormalRV t1 = engine.apply_edits({TimingEdit::set_speed(gates[2], 1.7)});
  expect_rv_eq(t1, engine.tmax());  // the return value is the cached Tmax
  expect_engine_matches_full(engine);

  NodeParams p = engine.view().node_params(gates[gates.size() / 2]);
  p.t_int *= 1.2;
  p.c_in *= 0.8;
  engine.apply_edits({TimingEdit::set_params(gates[gates.size() / 2], p)});
  expect_engine_matches_full(engine);

  // A mixed batch in one call.
  NodeParams q = engine.view().node_params(gates[1]);
  q.c *= 1.3;
  engine.apply_edits({TimingEdit::set_speed(gates.back(), 2.4),
                      TimingEdit::set_params(gates[1], q)});
  expect_engine_matches_full(engine);
  EXPECT_GT(engine.last_arrival_recomputes(), 0u);
}

TEST(IncrementalEngine, FullRecomputeIsIdempotentOnCaches) {
  const Circuit c = small_dag(60, 31);
  IncrementalEngine engine(c.view(), unit_speed(c.view()));
  engine.apply_edits({TimingEdit::set_speed(c.view().gates_in_topo_order()[5], 2.0)});
  const stat::NormalRV tmax = engine.tmax();
  const std::vector<stat::NormalRV> arrivals = engine.arrivals();
  engine.full_recompute();
  expect_rv_eq(engine.tmax(), tmax);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    expect_rv_eq(engine.arrivals()[i], arrivals[i]);
  }
}

// ---------------------------------------------------------------------------
// Property suite: random mixed edit sequences, bit-identity of everything the
// stack serves (arrivals, Tmax, slacks, gradients) vs full recompute, across
// --jobs {1,4} x serial cutoff {0, advised}.

void run_edit_sequence_property(int jobs, bool advised_cutoff) {
  runtime::set_threads(jobs);
  if (advised_cutoff) {
    runtime::reset_level_serial_cutoff();  // re-resolves to the advised auto value
  } else {
    runtime::set_level_serial_cutoff(0);  // every level pays the pool
  }

  // ~300 gates: comfortably above the parallel gate cutoff so the pooled
  // kernels actually run at jobs > 1.
  const Circuit c = small_dag(300, 77);
  const ssta::SigmaModel sigma{};
  IncrementalEngine engine(c.view(), unit_speed(c.view()), sigma);
  core::ReducedEvaluator warm_eval(engine.view(), sigma);
  const std::vector<NodeId>& gates = engine.view().gates_in_topo_order();
  const double deadline = engine.tmax().mu * 1.05;

  std::mt19937 rng(20260807u + static_cast<unsigned>(jobs) * 2u +
                   (advised_cutoff ? 1u : 0u));
  std::uniform_int_distribution<std::size_t> pick_gate(0, gates.size() - 1);
  std::uniform_real_distribution<double> speed_dist(0.6, 2.4);
  std::uniform_real_distribution<double> scale_dist(0.9, 1.1);
  std::uniform_int_distribution<int> batch_size(1, 3);
  std::bernoulli_distribution is_speed_edit(0.5);

  for (int step = 0; step < 12; ++step) {
    std::vector<TimingEdit> batch;
    std::vector<NodeId> param_edited;
    const int n = batch_size(rng);
    for (int i = 0; i < n; ++i) {
      const NodeId g = gates[pick_gate(rng)];
      if (is_speed_edit(rng)) {
        batch.push_back(TimingEdit::set_speed(g, speed_dist(rng)));
      } else {
        NodeParams p = engine.view().node_params(g);
        p.t_int *= scale_dist(rng);
        p.c *= scale_dist(rng);
        p.c_in *= scale_dist(rng);
        batch.push_back(TimingEdit::set_params(g, p));
        param_edited.push_back(g);
      }
    }
    engine.apply_edits(batch);

    // Arrivals + Tmax, bitwise.
    const ssta::TimingReport fresh = fresh_report(engine);
    ASSERT_EQ(fresh.arrival.size(), engine.arrivals().size());
    for (std::size_t i = 0; i < fresh.arrival.size(); ++i) {
      EXPECT_EQ(fresh.arrival[i].mu, engine.arrivals()[i].mu) << "node " << i;
      EXPECT_EQ(fresh.arrival[i].var, engine.arrivals()[i].var) << "node " << i;
    }
    EXPECT_EQ(fresh.circuit_delay.mu, engine.tmax().mu);
    EXPECT_EQ(fresh.circuit_delay.var, engine.tmax().var);

    // Slacks computed from the engine's cached report vs the fresh one.
    const ssta::DelayCalculator calc(engine.view(), sigma);
    const std::vector<stat::NormalRV> delays = calc.all_delays(engine.speed());
    const ssta::SlackReport s_inc =
        ssta::compute_slacks(engine.view(), delays, engine.timing_report(), deadline);
    const ssta::SlackReport s_full =
        ssta::compute_slacks(engine.view(), delays, fresh, deadline);
    ASSERT_EQ(s_inc.slack.size(), s_full.slack.size());
    for (std::size_t i = 0; i < s_inc.slack.size(); ++i) {
      EXPECT_EQ(s_inc.slack[i].mu, s_full.slack[i].mu);
      EXPECT_EQ(s_inc.slack[i].var, s_full.slack[i].var);
    }

    // Gradients: the warm evaluator (persistent tape, dirty-cone re-eval)
    // vs a cold evaluation on the same edited view.
    warm_eval.note_edits(param_edited);
    std::vector<double> g_warm, g_cold;
    const stat::NormalRV t_warm = warm_eval.eval_with_grad(engine.speed(), 1.0, 0.5, g_warm);
    core::ReducedEvaluator cold(engine.view(), sigma);
    const stat::NormalRV t_cold = cold.eval_with_grad(engine.speed(), 1.0, 0.5, g_cold);
    EXPECT_EQ(t_warm.mu, t_cold.mu);
    EXPECT_EQ(t_warm.var, t_cold.var);
    ASSERT_EQ(g_warm.size(), g_cold.size());
    for (std::size_t i = 0; i < g_warm.size(); ++i) {
      EXPECT_EQ(g_warm[i], g_cold[i]) << "grad " << i;
    }
  }
}

class EditSequenceProperty : public ::testing::Test {
 protected:
  void TearDown() override {
    runtime::set_threads(0);  // back to auto
    runtime::reset_level_serial_cutoff();
  }
};

TEST_F(EditSequenceProperty, Jobs1CutoffZero) { run_edit_sequence_property(1, false); }
TEST_F(EditSequenceProperty, Jobs1CutoffAdvised) { run_edit_sequence_property(1, true); }
TEST_F(EditSequenceProperty, Jobs4CutoffZero) { run_edit_sequence_property(4, false); }
TEST_F(EditSequenceProperty, Jobs4CutoffAdvised) { run_edit_sequence_property(4, true); }

// ---------------------------------------------------------------------------
// ReducedEvaluator cache behaviour.

TEST(ReducedEvaluatorCache, ConeReEvalTouchesFewerGatesThanFullSweep) {
  const Circuit c = small_dag(300, 41);
  const ssta::SigmaModel sigma{};
  core::ReducedEvaluator eval(c.view(), sigma);
  std::vector<double> speed = unit_speed(c.view());
  std::vector<double> grad;
  eval.eval_with_grad(speed, 1.0, 0.0, grad);  // primes the tape
  EXPECT_EQ(eval.last_forward_recomputes(),
            static_cast<std::size_t>(c.view().num_gates()));

  // Perturb a near-output gate: only its small cone refolds.
  const std::vector<NodeId>& gates = c.view().gates_in_topo_order();
  speed[static_cast<std::size_t>(gates.back())] = 1.5;
  eval.eval_with_grad(speed, 1.0, 0.0, grad);
  EXPECT_LT(eval.last_forward_recomputes(),
            static_cast<std::size_t>(c.view().num_gates()));
  EXPECT_GT(eval.last_forward_recomputes(), 0u);

  // invalidate() drops the tape: next call is a full sweep again.
  eval.invalidate();
  eval.eval_with_grad(speed, 1.0, 0.0, grad);
  EXPECT_EQ(eval.last_forward_recomputes(),
            static_cast<std::size_t>(c.view().num_gates()));
}

TEST(ReducedEvaluatorCache, UnnotedViewEditStillYieldsColdBits) {
  const Circuit c = small_dag(120, 43);
  const ssta::SigmaModel sigma{};
  TimingView view = c.view();
  core::ReducedEvaluator eval(view, sigma);
  const std::vector<double> speed = unit_speed(view);
  std::vector<double> g_warm, g_cold;
  eval.eval_with_grad(speed, 1.0, 0.0, g_warm);

  // Edit behind the evaluator's back (no note_edits): the epoch mismatch must
  // force a safe full resweep, not a silently stale gradient.
  const NodeId g = view.gates_in_topo_order()[3];
  NodeParams p = view.node_params(g);
  p.t_int *= 1.3;
  view.update_node_params(g, p);

  const stat::NormalRV t_warm = eval.eval_with_grad(speed, 1.0, 0.0, g_warm);
  core::ReducedEvaluator cold(view, sigma);
  const stat::NormalRV t_cold = cold.eval_with_grad(speed, 1.0, 0.0, g_cold);
  EXPECT_EQ(t_warm.mu, t_cold.mu);
  EXPECT_EQ(t_warm.var, t_cold.var);
  for (std::size_t i = 0; i < g_warm.size(); ++i) EXPECT_EQ(g_warm[i], g_cold[i]);
}

// ---------------------------------------------------------------------------
// Sizer warm-start (resize) contract.

core::SizerOptions reduced_opts() {
  core::SizerOptions o;
  o.method = core::Method::kReducedSpace;
  return o;
}

TEST(SizerWarmStart, ResizeValidatesWarmStart) {
  const Circuit c = small_dag(40, 47);
  core::SizingSpec spec;
  const core::Sizer sizer(c, spec);
  core::SizingWarmStart warm;
  warm.speed.assign(3, 1.0);  // wrong size: must be indexed by NodeId
  EXPECT_THROW(sizer.resize(reduced_opts(), warm), std::invalid_argument);
  warm.speed.clear();
  warm.rho = std::nan("");
  EXPECT_THROW(sizer.resize(reduced_opts(), warm), std::invalid_argument);
}

TEST(SizerWarmStart, ViewConstructedSizerRejectsFullSpace) {
  const Circuit c = small_dag(40, 53);
  TimingView view = c.view();
  core::SizingSpec spec;
  const core::Sizer sizer(view, spec);
  core::SizerOptions full;
  full.method = core::Method::kFullSpace;
  EXPECT_THROW(sizer.run(full), std::invalid_argument);
  EXPECT_NO_THROW(sizer.run(reduced_opts()));
}

TEST(SizerWarmStart, WarmResizeConvergesInFewerOuterIterationsThanCold) {
  // Solve a delay-constrained min-area instance, perturb a few cells' library
  // constants (~5%), and re-solve on the edited view: the warm start from the
  // base solve must need fewer AugLag outer iterations than a cold solve, and
  // land on an equivalent sizing.
  const Circuit c = small_dag(60, 59);
  const core::SizingSpec base_spec = [&] {
    core::SizingSpec spec;
    spec.objective = core::Objective::min_area();
    const ssta::DelayCalculator calc(c, spec.sigma_model);
    std::vector<double> s(static_cast<std::size_t>(c.num_nodes()), spec.max_speed);
    const double mu_min = ssta::run_ssta(calc, s).circuit_delay.mu;
    std::fill(s.begin(), s.end(), 1.0);
    const double mu_max = ssta::run_ssta(calc, s).circuit_delay.mu;
    spec.delay_constraint = core::DelayConstraint::at_most(mu_min + 0.4 * (mu_max - mu_min));
    return spec;
  }();

  const core::SizingResult base = core::Sizer(c, base_spec).run(reduced_opts());
  ASSERT_TRUE(base.converged) << base.status;
  ASSERT_GT(base.outer_iterations, 1);

  TimingView view = c.view();
  const std::vector<NodeId>& gates = view.gates_in_topo_order();
  for (std::size_t i = 0; i < gates.size(); i += gates.size() / 3) {
    NodeParams p = view.node_params(gates[i]);
    p.t_int *= 1.05;
    view.update_node_params(gates[i], p);
  }

  const core::Sizer resizer(view, base_spec);
  const core::SizingResult cold = resizer.run(reduced_opts());
  const core::SizingResult warm = resizer.resize(reduced_opts(), base.warm);
  ASSERT_TRUE(cold.converged) << cold.status;
  ASSERT_TRUE(warm.converged) << warm.status;

  EXPECT_LT(warm.outer_iterations, cold.outer_iterations);
  EXPECT_NEAR(warm.sum_speed, cold.sum_speed, 0.05 * cold.sum_speed + 0.1);
  EXPECT_LE(warm.constraint_violation, 1e-3);
}

}  // namespace
}  // namespace statsize
