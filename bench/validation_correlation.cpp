// E9 — the paper's future-work extension, evaluated: correlation-aware
// canonical-form SSTA vs the paper's independence-assuming propagation vs
// Monte Carlo ground truth, across increasingly reconvergent circuits.
//
// The paper (sec. 3) justifies independence by the small errors reported in
// [2]; E5 shows that on heavily reconvergent synthetic netlists the sigma
// error is in fact large. This bench shows the canonical-form engine closes
// most of that gap at analytic (non-sampling) cost.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "netlist/generators.h"
#include "ssta/canonical.h"
#include "ssta/monte_carlo.h"
#include "ssta/ssta.h"

int main() {
  using namespace statsize;

  std::printf("=== E9: independence SSTA vs canonical (correlation-aware) SSTA vs MC ===\n\n");
  std::printf("%-8s | %8s %8s %8s | %8s %8s %8s | %12s\n", "circuit", "mu_ind", "mu_can",
              "mu_mc", "sd_ind", "sd_can", "sd_mc", "sd err ratio");

  int failures = 0;
  for (const std::string name : {"tree", "apex2", "apex1", "k2"}) {
    const netlist::Circuit c =
        name == "tree" ? netlist::make_tree_circuit() : netlist::make_mcnc_like(name);
    const ssta::DelayCalculator calc(c, {0.25, 0.0});
    const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
    const auto delays = calc.all_delays(speed);

    const stat::NormalRV ind = ssta::run_ssta(c, delays).circuit_delay;
    const stat::NormalRV can = ssta::run_canonical_ssta(c, delays).circuit_delay_normal();
    ssta::MonteCarloOptions opt;
    opt.num_samples = 50000;
    opt.seed = 23;
    opt.truncate_negative_delays = false;
    const ssta::MonteCarloResult mc = ssta::run_monte_carlo(c, delays, opt);

    const double e_ind = std::abs(ind.sigma() - mc.stddev);
    const double e_can = std::abs(can.sigma() - mc.stddev);
    const double ratio = e_can / std::max(e_ind, 1e-12);
    std::printf("%-8s | %8.2f %8.2f %8.2f | %8.3f %8.3f %8.3f | %9.2fx\n", name.c_str(),
                ind.mu, can.mu, mc.mean, ind.sigma(), can.sigma(), mc.stddev, ratio);

    if (name == "tree") {
      if (e_can > 0.05 || e_ind > 0.05) {
        std::printf("  [FAIL] on the reconvergence-free tree both engines must be exact\n");
        ++failures;
      }
    } else {
      if (e_can > 0.6 * e_ind) {
        std::printf("  [FAIL] canonical engine should recover most of the sigma error\n");
        ++failures;
      }
      if (std::abs(can.mu - mc.mean) > std::abs(ind.mu - mc.mean) + 0.02 * mc.mean) {
        std::printf("  [FAIL] canonical mu should not regress vs independence\n");
        ++failures;
      }
    }
  }

  std::printf(
      "\nReading: the independence assumption (paper eq. 6) overestimates mu a little\n"
      "and underestimates sigma badly once paths reconverge; carrying per-gate\n"
      "sources in canonical forms fixes both at analytic cost. This implements and\n"
      "validates the paper's 'future work' correlation handling.\n");
  std::printf("\n%s\n", failures == 0 ? "E9 VALIDATION: all criteria hold"
                                      : "E9 VALIDATION: some criteria FAILED");
  return failures == 0 ? 0 : 1;
}
