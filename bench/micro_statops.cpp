// E8 — microbenchmarks (google-benchmark) of the statistical operators and
// the timing engines. The paper's case against Monte Carlo timing (sec. 1)
// is cost "in an environment directed at optimization, in which repeated
// delay evaluations are required": these numbers quantify that argument on
// this implementation.

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "core/reduced_space.h"
#include "netlist/generators.h"
#include "ssta/monte_carlo.h"
#include "ssta/ssta.h"
#include "stat/clark.h"

namespace {

using namespace statsize;

std::vector<stat::NormalRV> random_operands(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> mu(-5.0, 5.0);
  std::uniform_real_distribution<double> var(0.01, 4.0);
  std::vector<stat::NormalRV> out(static_cast<std::size_t>(n));
  for (auto& rv : out) rv = {mu(rng), var(rng)};
  return out;
}

void BM_NormalCdf(benchmark::State& state) {
  double x = -6.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stat::normal_cdf(x));
    x += 0.001;
    if (x > 6.0) x = -6.0;
  }
}
BENCHMARK(BM_NormalCdf);

void BM_ClarkMaxValue(benchmark::State& state) {
  const auto ops = random_operands(1024, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stat::clark_max(ops[i % 1024], ops[(i + 1) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_ClarkMaxValue);

void BM_ClarkMaxGrad(benchmark::State& state) {
  const auto ops = random_operands(1024, 2);
  stat::ClarkGrad grad;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stat::clark_max_grad(ops[i % 1024], ops[(i + 1) % 1024], grad));
    ++i;
  }
}
BENCHMARK(BM_ClarkMaxGrad);

void BM_ClarkMaxFull(benchmark::State& state) {
  const auto ops = random_operands(1024, 3);
  stat::ClarkGrad grad;
  stat::ClarkHess hess;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stat::clark_max_full(ops[i % 1024], ops[(i + 1) % 1024], grad, hess));
    ++i;
  }
}
BENCHMARK(BM_ClarkMaxFull);

void BM_SstaSweep(benchmark::State& state) {
  netlist::RandomDagParams p;
  p.num_gates = static_cast<int>(state.range(0));
  p.seed = 4;
  const netlist::Circuit c = netlist::make_random_dag(p);
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.5);
  const auto delays = calc.all_delays(speed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssta::run_ssta(c, delays).circuit_delay.mu);
  }
  state.SetItemsProcessed(state.iterations() * p.num_gates);
}
BENCHMARK(BM_SstaSweep)->Arg(100)->Arg(1000);

void BM_AdjointGradient(benchmark::State& state) {
  netlist::RandomDagParams p;
  p.num_gates = static_cast<int>(state.range(0));
  p.seed = 5;
  const netlist::Circuit c = netlist::make_random_dag(p);
  const core::ReducedEvaluator eval(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.5);
  std::vector<double> grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.eval_with_grad(speed, 1.0, 0.1, grad).mu);
  }
  state.SetItemsProcessed(state.iterations() * p.num_gates);
}
BENCHMARK(BM_AdjointGradient)->Arg(100)->Arg(1000);

void BM_MonteCarloTiming(benchmark::State& state) {
  // One full MC characterization (1000 samples) — the cost the paper avoids
  // per optimizer step by using the analytic propagation (BM_SstaSweep).
  netlist::RandomDagParams p;
  p.num_gates = static_cast<int>(state.range(0));
  p.seed = 6;
  const netlist::Circuit c = netlist::make_random_dag(p);
  const ssta::DelayCalculator calc(c, {0.25, 0.0});
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.5);
  const auto delays = calc.all_delays(speed);
  ssta::MonteCarloOptions opt;
  opt.num_samples = 1000;
  for (auto _ : state) {
    opt.seed++;
    benchmark::DoNotOptimize(ssta::run_monte_carlo(c, delays, opt).mean);
  }
}
BENCHMARK(BM_MonteCarloTiming)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
