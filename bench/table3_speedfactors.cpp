// Reproduces the paper's Table 3: per-gate speed factors of the tree circuit
// for {min area, min sigma, max sigma} at the middle pinned mean delay
// (the paper's mu = 6.5 row; here the same relative position in our range).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sizer.h"
#include "netlist/generators.h"

namespace {

using namespace statsize;

std::map<std::string, double> speed_by_name(const netlist::Circuit& c,
                                            const core::SizingResult& r) {
  std::map<std::string, double> m;
  for (netlist::NodeId id : c.topo_order()) {
    const netlist::Node& n = c.node(id);
    if (n.kind == netlist::NodeKind::kGate) m[n.name] = r.speed[static_cast<std::size_t>(id)];
  }
  return m;
}

void check(bool ok, const char* what, int& failures) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++failures;
}

}  // namespace

int main() {
  std::printf("=== Table 3: tree-circuit speed factors at the middle mu target ===\n");
  const netlist::Circuit c = netlist::make_tree_circuit();
  bench::print_workload("tree", c);

  core::SizingSpec spec;
  const bench::MetricRange range = bench::metric_range(c, spec, 0.0);
  const double target = range.at(0.55);  // paper: mu = 6.5 in [5.4, 7.4]
  std::printf("# pinned mu_Tmax = %.3f (55%% of range [%.2f, %.2f]; paper used 6.5)\n", target,
              range.lo, range.hi);
  spec.delay_constraint = core::DelayConstraint::exactly(target);

  const char* gates[] = {"A", "B", "C", "D", "E", "F", "G"};
  std::printf("\n| %-12s |", "objective");
  for (const char* g : gates) std::printf(" S_%s  |", g);
  std::printf("\n|--------------|------|------|------|------|------|------|------|\n");

  std::map<std::string, std::map<std::string, double>> table;
  for (const core::Objective obj :
       {core::Objective::min_area(), core::Objective::min_sigma(), core::Objective::max_sigma()}) {
    spec.objective = obj;
    core::SizerOptions opt;
    opt.method = core::Method::kFullSpace;
    const core::SizingResult r = core::Sizer(c, spec).run(opt);
    const auto speeds = speed_by_name(c, r);
    table[obj.description()] = speeds;
    std::printf("| %-12s |", obj.description().c_str());
    for (const char* g : gates) std::printf(" %.2f |", speeds.at(g));
    std::printf("%s\n", r.converged ? "" : "  <- not converged");
  }

  // Paper's Table 3 structure.
  int failures = 0;
  std::printf("# criteria:\n");
  for (const char* obj : {"min sum(S)", "min sigma"}) {
    const auto& s = table.at(obj);
    const bool groups =
        std::abs(s.at("A") - s.at("B")) < 0.03 && std::abs(s.at("A") - s.at("D")) < 0.03 &&
        std::abs(s.at("A") - s.at("E")) < 0.03 && std::abs(s.at("C") - s.at("F")) < 0.03;
    check(groups, "symmetric gates get equal factors ({A,B,D,E} and {C,F})", failures);
    check(s.at("C") >= s.at("A") - 0.02 && s.at("G") >= s.at("C") - 0.02,
          "factors grow toward the output", failures);
    check(s.at("G") > s.at("A") + 0.05, "output gate clearly largest", failures);
  }
  {
    // Min-sigma is the more extreme allocation (leaves smaller, output larger).
    const auto& a = table.at("min sum(S)");
    const auto& m = table.at("min sigma");
    check(m.at("A") <= a.at("A") + 0.02 && m.at("G") >= a.at("G") - 0.02,
          "min-sigma is more extreme than min-area", failures);
  }
  {
    // Max-sigma abandons the balanced allocation: the factor spread across
    // the circuit becomes large. (The paper's solver differentiated the two
    // parallel subtrees, A=3 vs B=1; ours differentiates pipeline stages,
    // leaves=3 vs middle~1 — the objective has several symmetric maxima and
    // both mechanisms widen the delay distribution. EXPERIMENTS.md discusses
    // the multi-modality.)
    const auto& x = table.at("max sigma");
    double lo = 3.0;
    double hi = 1.0;
    for (const char* g : gates) {
      lo = std::min(lo, x.at(g));
      hi = std::max(hi, x.at(g));
    }
    check(hi - lo > 1.0, "max-sigma strongly differentiates gate delays", failures);
    const auto& m = table.at("min sigma");
    check(x.at("G") < m.at("G"),
          "max-sigma shrinks the output gate that min-sigma maximizes", failures);
  }

  std::printf("\n%s\n", failures == 0 ? "TABLE 3 REPRODUCTION: all criteria hold"
                                      : "TABLE 3 REPRODUCTION: some criteria FAILED");
  return failures == 0 ? 0 : 1;
}
