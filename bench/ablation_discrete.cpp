// E12 — discrete-library legalization gap: the paper sizes continuously
// (S in [1, limit]); real libraries offer a handful of drive strengths. This
// ablation snaps the continuous optimum onto geometric grids of varying
// resolution and measures the area premium needed to stay feasible.

#include <cstdio>
#include <limits>
#include <string>

#include "bench_util.h"
#include "core/discrete.h"
#include "core/sizer.h"
#include "netlist/generators.h"

int main() {
  using namespace statsize;

  std::printf("=== E12: discrete-size legalization gap vs grid resolution ===\n\n");
  std::printf("%-8s %8s | %10s | %6s %10s %8s %8s %8s\n", "circuit", "target", "cont. S",
              "grid", "disc. S", "gap", "repairs", "trims");

  int failures = 0;
  for (const std::string name : {"apex2", "apex1"}) {
    const netlist::Circuit c = netlist::make_mcnc_like(name);
    core::SizingSpec spec;
    spec.objective = core::Objective::min_area();
    const bench::MetricRange range = bench::metric_range(c, spec, 0.0);
    const double target = range.at(0.45);
    spec.delay_constraint = core::DelayConstraint::at_most(target);

    core::SizerOptions opt;
    opt.method = core::Method::kReducedSpace;
    const core::SizingResult cont = core::Sizer(c, spec).run(opt);
    if (!cont.converged) {
      std::printf("  [FAIL] continuous solve failed on %s\n", name.c_str());
      ++failures;
      continue;
    }

    double prev_gap = std::numeric_limits<double>::infinity();
    for (int steps : {3, 5, 9, 17, 33}) {
      const core::SizeGrid grid = core::SizeGrid::geometric(spec.max_speed, steps);
      const core::DiscreteResult d =
          core::legalize_sizing(c, spec, cont.speed, grid, target, 0.0);
      const double gap = d.sum_speed / cont.sum_speed - 1.0;
      std::printf("%-8s %8.2f | %10.1f | %6d %10.1f %7.2f%% %8d %8d%s\n", name.c_str(),
                  target, cont.sum_speed, steps, d.sum_speed, 100.0 * gap, d.repair_moves,
                  d.trim_moves, d.feasible ? "" : "  (INFEASIBLE)");
      if (!d.feasible) {
        std::printf("  [FAIL] legalization must stay feasible\n");
        ++failures;
      }
      if (gap > prev_gap + 0.02) {
        std::printf("  [FAIL] finer grids should not pay much more area\n");
        ++failures;
      }
      prev_gap = gap;
    }
  }

  std::printf(
      "\nReading: a handful of drive strengths (5-9 grid points) already brings the\n"
      "legalization premium to the few-percent level; the continuous relaxation the\n"
      "paper optimizes is an excellent proxy for a discrete library.\n");
  std::printf("\n%s\n", failures == 0 ? "E12: all criteria hold" : "E12: criteria FAILED");
  return failures == 0 ? 0 : 1;
}
