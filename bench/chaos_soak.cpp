// Chaos soak (DESIGN.md §13): the crash-safety contract under load, end to
// end, across a REAL process death.
//
//   1. Clean reference: an unarmed in-process daemon answers one SSTA job;
//      its result is the bit-identity reference for everything below.
//   2. A child process (forked before any thread exists — sanitizer-safe)
//      runs `statsize serve` with a durable journal and a schedule of armed
//      IO faults (accept reset, dropped read, torn response write, torn
//      journal write, one executor crash).
//   3. Closed-loop clients with Idempotency-Keys and retrying backoff hammer
//      the child; once enough submissions are acked, the child is SIGKILLed
//      mid-load — in-flight jobs, queued jobs, open sockets and all.
//   4. The parent restarts a daemon on the same journal dir and enforces the
//      hard gates: every acked job is still there and reaches a terminal
//      state (no wedge, no lost jobs), re-submitting every key admits no
//      duplicate work (dedup for done jobs, a fresh attempt only for
//      interrupted ones), every completed result is bit-identical to the
//      clean reference, and recovery replay itself survived whatever tail
//      the kill left behind.
//
// Any violated gate exits 1 (scripts/check.sh runs this as a hard gate);
// success writes BENCH_chaos.json. Sized for a single-core CI host: the
// load phase is tens of millisecond-scale c17 jobs, not minutes of soak.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "runtime/fault.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/json.h"

namespace {

using namespace statsize;
using Clock = std::chrono::steady_clock;

constexpr const char* kC17 = R"(.model c17
.inputs 1GAT 2GAT 3GAT 6GAT 7GAT
.outputs 22GAT 23GAT
.names 1GAT 3GAT 10GAT
0- 1
-0 1
.names 3GAT 6GAT 11GAT
0- 1
-0 1
.names 2GAT 11GAT 16GAT
0- 1
-0 1
.names 11GAT 7GAT 19GAT
0- 1
-0 1
.names 10GAT 16GAT 22GAT
0- 1
-0 1
.names 16GAT 19GAT 23GAT
0- 1
-0 1
.end
)";

constexpr int kClients = 2;
constexpr int kJobsPerClient = 8;
constexpr int kKillAfterAcks = 5;  ///< SIGKILL lands with work queued + running

/// The fault schedule the child daemon runs under: transport failures the
/// clients must retry through, one admission-side torn journal write (503 →
/// retried, not lost), and one simulated executor crash (an `interrupted`
/// job the recovery gate must surface).
constexpr const char* kChildFaults =
    "serve.accept:3,serve.read:5,serve.write.partial:7,"
    "serve.journal.write:4,serve.executor.crash:2";

[[noreturn]] void fail(const std::string& what) {
  std::fprintf(stderr, "FATAL: chaos_soak gate violated: %s\n", what.c_str());
  std::exit(1);
}

serve::ClientOptions soak_client_options() {
  serve::ClientOptions options;
  options.retries = 6;
  options.backoff_ms = 5.0;
  options.backoff_cap_ms = 80.0;
  options.connect_timeout_seconds = 2.0;
  options.recv_timeout_seconds = 2.0;
  return options;
}

std::string job_body(const std::string& key) {
  return "{\"circuit\": \"" + key + "\", \"type\": \"ssta\"}";
}

/// Polls until the job leaves queued/running, bounded — a job that never
/// settles after recovery is the wedge this bench exists to catch.
util::JsonValue wait_terminal(serve::Client& client, const std::string& id,
                              double deadline_seconds) {
  const Clock::time_point t0 = Clock::now();
  for (;;) {
    serve::ApiResult result = client.job(id);
    if (result.status != 200) fail("job " + id + " lost: HTTP " + std::to_string(result.status));
    util::JsonValue doc = result.json();
    const std::string state = doc.string_or("state", "");
    if (state != "queued" && state != "running") return doc;
    if (std::chrono::duration<double>(Clock::now() - t0).count() > deadline_seconds) {
      fail("wedged: job " + id + " still '" + state + "' after recovery");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// The child: a journaled daemon under the fault schedule. Writes its port
/// down the pipe, then idles until SIGKILL. Never returns.
[[noreturn]] void run_child_daemon(const std::string& journal_dir, int port_pipe) {
  runtime::fault::arm(kChildFaults);
  serve::ServerOptions options;
  options.port = 0;
  options.journal_dir = journal_dir;
  options.journal_fsync = serve::FsyncPolicy::kAlways;  // an ack means durable
  serve::Server server(options);
  server.start();
  const int port = server.port();
  if (write(port_pipe, &port, sizeof(port)) != sizeof(port)) _exit(2);
  close(port_pipe);
  for (;;) pause();  // SIGKILL is the only way out — that's the point
}

struct Submission {
  std::string key;
  std::string id;      ///< empty when the ack never arrived (kill window)
  bool acked = false;
};

}  // namespace

int main() {
  const std::string journal_dir = "chaos_soak_journal";
  std::filesystem::remove_all(journal_dir);

  // -- Fork the chaos daemon FIRST: the process must be single-threaded at
  // fork time or the sanitizers (rightly) object.
  int port_pipe[2];
  if (pipe(port_pipe) != 0) fail("pipe() failed");
  const pid_t child = fork();
  if (child < 0) fail("fork() failed");
  if (child == 0) {
    close(port_pipe[0]);
    run_child_daemon(journal_dir, port_pipe[1]);
  }
  close(port_pipe[1]);
  int chaos_port = 0;
  if (read(port_pipe[0], &chaos_port, sizeof(chaos_port)) != sizeof(chaos_port)) {
    kill(child, SIGKILL);
    fail("child daemon did not report a port");
  }
  close(port_pipe[0]);
  std::printf("chaos_soak: chaos daemon pid %d on 127.0.0.1:%d (faults: %s)\n",
              static_cast<int>(child), chaos_port, kChildFaults);

  // -- Clean reference (parent-local, unarmed, no journal).
  double ref_mu = 0.0;
  double ref_sigma = 0.0;
  {
    serve::Server reference;
    reference.start();
    serve::Client client("127.0.0.1", reference.port());
    const std::string key = client.upload(kC17, "blif", "c17");
    util::JsonValue doc = client.wait(client.submit(job_body(key)), 0.001);
    const util::JsonValue* result = doc.find("result");
    if (doc.string_or("state", "") != "done" || result == nullptr) {
      fail("clean reference job did not finish");
    }
    ref_mu = result->number_or("mu", 0.0);
    ref_sigma = result->number_or("sigma", 0.0);
    reference.stop();
  }
  std::printf("chaos_soak: clean reference mu=%.17g sigma=%.17g\n", ref_mu, ref_sigma);

  // -- Closed-loop load against the chaos daemon; SIGKILL mid-load.
  std::mutex mu;
  std::vector<Submission> submissions;
  std::atomic<int> acks{0};
  std::atomic<bool> killed{false};
  std::atomic<long> client_retries{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      serve::Client client("127.0.0.1", chaos_port, soak_client_options());
      std::string circuit_key;
      for (int i = 0; i < kJobsPerClient; ++i) {
        Submission sub;
        sub.key = "soak-c" + std::to_string(c) + "-i" + std::to_string(i);
        try {
          if (circuit_key.empty()) circuit_key = client.upload(kC17, "blif", "c17");
          sub.id = client.submit(job_body(circuit_key), sub.key);
          sub.acked = true;
          acks.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
          // Ack lost — possibly admitted anyway. The restart phase re-submits
          // this key; the idempotency contract owns the ambiguity.
        }
        {
          const std::lock_guard<std::mutex> lock(mu);
          submissions.push_back(sub);
        }
        if (!sub.acked && killed.load(std::memory_order_relaxed)) break;
      }
      client_retries.fetch_add(client.retries_used(), std::memory_order_relaxed);
    });
  }

  // Kill once enough acks are in flight (bounded by a hard cap so a wedged
  // load phase cannot hang the bench).
  const Clock::time_point load_start = Clock::now();
  while (acks.load(std::memory_order_relaxed) < kKillAfterAcks &&
         std::chrono::duration<double>(Clock::now() - load_start).count() < 20.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  kill(child, SIGKILL);
  killed.store(true, std::memory_order_relaxed);
  int wait_status = 0;
  waitpid(child, &wait_status, 0);
  for (std::thread& t : clients) t.join();
  std::printf("chaos_soak: SIGKILL after %d acked submissions (%ld client retries)\n",
              acks.load(), client_retries.load());
  if (acks.load() < kKillAfterAcks) fail("load phase never reached the kill threshold");

  // -- Restart on the same journal and enforce the gates.
  serve::ServerOptions restart_options;
  restart_options.journal_dir = journal_dir;
  serve::Server restarted(restart_options);
  restarted.start();  // throwing here = journal corruption gate
  serve::Client client("127.0.0.1", restarted.port(), soak_client_options());
  const std::int64_t truncated = restarted.journal()->truncated_bytes();
  const std::int64_t recovered = restarted.metrics().jobs_recovered.value();
  const std::int64_t interrupted = restarted.metrics().jobs_interrupted.value();
  std::printf("chaos_soak: recovery replayed %lld records (%lld truncated bytes), "
              "%lld jobs recovered, %lld interrupted\n",
              static_cast<long long>(restarted.metrics().journal_records_replayed.value()),
              static_cast<long long>(truncated), static_cast<long long>(recovered),
              static_cast<long long>(interrupted));

  // Gate 1 — no lost or wedged jobs: every acked id settles terminally, and
  // every completed result is bit-identical to the clean reference.
  std::map<std::string, std::string> state_by_key;
  std::map<std::string, std::string> id_by_key;
  int done_before_resubmit = 0;
  for (const Submission& sub : submissions) {
    if (!sub.acked) continue;
    util::JsonValue doc = wait_terminal(client, sub.id, 30.0);
    const std::string state = doc.string_or("state", "");
    if (state == "failed") {
      fail("acked job " + sub.id + " failed after recovery: " + doc.string_or("error", ""));
    }
    if (state == "done") {
      ++done_before_resubmit;
      const util::JsonValue* result = doc.find("result");
      if (result == nullptr || result->number_or("mu", -1.0) != ref_mu ||
          result->number_or("sigma", -1.0) != ref_sigma) {
        fail("job " + sub.id + " result is not bit-identical to the clean run");
      }
    }
    state_by_key[sub.key] = state;
    id_by_key[sub.key] = sub.id;
  }

  // Gate 2 — idempotent re-submission admits no duplicate work: every key is
  // retried; a done job answers with its original id (dedup), only an
  // interrupted or never-admitted key may start fresh work.
  int deduped = 0;
  int fresh = 0;
  const std::int64_t submitted_before = restarted.metrics().jobs_submitted.value();
  std::string circuit_key = client.upload(kC17, "blif", "c17");
  std::vector<std::string> fresh_ids;
  for (const Submission& sub : submissions) {
    serve::ApiResult result = client.request("POST", "/v1/jobs", job_body(circuit_key),
                                             {{"Idempotency-Key", sub.key}});
    if (result.status != 200 && result.status != 202) {
      fail("re-submitting key " + sub.key + " answered HTTP " +
           std::to_string(result.status) + ": " + result.body);
    }
    util::JsonValue doc = result.json();
    if (doc.bool_or("deduplicated", false)) {
      ++deduped;
      const auto known = id_by_key.find(sub.key);
      if (known != id_by_key.end() && doc.string_or("id", "") != known->second) {
        fail("key " + sub.key + " deduplicated to a DIFFERENT job than it acked");
      }
    } else {
      ++fresh;
      const auto state = state_by_key.find(sub.key);
      if (state != state_by_key.end() && state->second != "interrupted") {
        fail("key " + sub.key + " (state " + state->second +
             ") was re-admitted as new work — duplicate side effect");
      }
      fresh_ids.push_back(doc.string_or("id", ""));
    }
  }
  if (restarted.metrics().jobs_submitted.value() - submitted_before !=
      static_cast<std::int64_t>(fresh)) {
    fail("admission count does not match the fresh re-submissions — duplicates slipped in");
  }
  for (const std::string& id : fresh_ids) {
    util::JsonValue doc = wait_terminal(client, id, 30.0);
    const util::JsonValue* result = doc.find("result");
    if (doc.string_or("state", "") != "done" || result == nullptr ||
        result->number_or("mu", -1.0) != ref_mu) {
      fail("retried job " + id + " did not complete bit-identically");
    }
  }
  restarted.stop();

  std::printf("chaos_soak: PASS — %d acked, %d done pre-resubmit, %d deduped, "
              "%d fresh retries, 0 duplicates, 0 wedges\n",
              acks.load(), done_before_resubmit, deduped, fresh);

  bench::JsonArtifact artifact("chaos");
  artifact.add_row()
      .field("acked_submissions", acks.load())
      .field("client_retries", static_cast<int>(client_retries.load()))
      .field("journal_truncated_bytes", static_cast<int>(truncated))
      .field("jobs_recovered", static_cast<int>(recovered))
      .field("jobs_interrupted", static_cast<int>(interrupted))
      .field("done_before_resubmit", done_before_resubmit)
      .field("deduplicated_retries", deduped)
      .field("fresh_retries", fresh)
      .field("duplicate_side_effects", 0)
      .field("status", std::string("pass"));
  artifact.write();

  std::filesystem::remove_all(journal_dir);
  return 0;
}
