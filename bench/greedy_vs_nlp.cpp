// E11 — what exactness buys: the paper's NLP sizing vs a TILOS-style greedy
// sensitivity heuristic (the dominant pre-mathematical-programming approach)
// at identical delay targets. Reported: area spent and wall time, across
// target tightness and circuit size.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/greedy.h"
#include "core/sizer.h"
#include "netlist/generators.h"

int main() {
  using namespace statsize;

  std::printf("=== E11: greedy sensitivity heuristic vs exact NLP sizing ===\n\n");
  std::printf("%-8s %8s | %10s %8s %8s | %10s %8s | %9s\n", "circuit", "target", "greedy S",
              "rounds", "time", "nlp S", "time", "area gap");

  int failures = 0;
  for (const std::string name : {"apex2", "apex1"}) {
    const netlist::Circuit c = netlist::make_mcnc_like(name);
    core::SizingSpec spec;
    const bench::MetricRange range = bench::metric_range(c, spec, 0.0);

    for (double frac : {0.25, 0.5, 0.75}) {
      const double target = range.at(frac);

      const core::GreedyResult greedy = core::greedy_size(c, spec, target, 0.0);

      spec.objective = core::Objective::min_area();
      spec.delay_constraint = core::DelayConstraint::at_most(target);
      core::SizerOptions opt;
      opt.method = core::Method::kReducedSpace;
      const core::SizingResult nlp = core::Sizer(c, spec).run(opt);

      const double gap = greedy.sum_speed / nlp.sum_speed - 1.0;
      std::printf("%-8s %8.2f | %10.1f %8d %7.2fs | %10.1f %7.2fs | %8.2f%%%s%s\n",
                  name.c_str(), target, greedy.sum_speed, greedy.rounds,
                  greedy.wall_seconds, nlp.sum_speed, nlp.wall_seconds, 100.0 * gap,
                  greedy.met_target ? "" : "  (greedy missed target)",
                  nlp.converged ? "" : "  (nlp not converged)");

      if (!nlp.converged || nlp.constraint_violation > 1e-3) {
        std::printf("  [FAIL] NLP must meet the target\n");
        ++failures;
      }
      if (greedy.met_target && nlp.sum_speed > greedy.sum_speed * 1.005) {
        std::printf("  [FAIL] exact NLP must not need more area than the heuristic\n");
        ++failures;
      }
    }
  }

  std::printf(
      "\nReading: the heuristic tracks the optimum loosely at easy targets and\n"
      "falls behind (or fails outright) as the target tightens — the gap is the\n"
      "value of solving the sizing problem exactly, the paper's core pitch.\n");
  std::printf("\n%s\n", failures == 0 ? "E11: all criteria hold" : "E11: criteria FAILED");
  return failures == 0 ? 0 : 1;
}
