// Serve throughput bench: closed-loop clients hammering an in-process
// statsize serve daemon over real loopback sockets. For each {workload mix x
// client count} cell it reports jobs/sec, client-observed latency
// p50/p95/p99, and the circuit-cache hit rate (every iteration re-uploads
// the circuit text, so steady state is all hits). A hard bit-identity check
// compares one served SSTA answer against the in-process engine before any
// timing starts — a daemon that is fast but wrong fails the bench.
//
// Note on scaling: compute runs on the scheduler's single executor (see
// src/serve/scheduler.h), so jobs/sec saturates once one client keeps the
// executor busy; more clients measure admission/IO overlap and queue wait,
// not compute parallelism.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "netlist/blif.h"
#include "serve/client.h"
#include "serve/server.h"
#include "ssta/delay_model.h"
#include "ssta/ssta.h"
#include "util/json.h"

namespace {

using namespace statsize;
using Clock = std::chrono::steady_clock;

// ISCAS-85 c17 — small enough that one job is dominated by pipeline overhead,
// which is what a serve throughput bench should measure.
constexpr const char* kC17 = R"(.model c17
.inputs 1GAT 2GAT 3GAT 6GAT 7GAT
.outputs 22GAT 23GAT
.names 1GAT 3GAT 10GAT
0- 1
-0 1
.names 3GAT 6GAT 11GAT
0- 1
-0 1
.names 2GAT 11GAT 16GAT
0- 1
-0 1
.names 11GAT 7GAT 19GAT
0- 1
-0 1
.names 10GAT 16GAT 22GAT
0- 1
-0 1
.names 16GAT 19GAT 23GAT
0- 1
-0 1
.end
)";

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

double quantile_of(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/// One job submission per iteration; the mix decides the type per index.
std::string job_body(const std::string& key, const std::string& mix, int i) {
  std::string type = "ssta";
  std::string extra;
  if (mix == "mixed") {
    switch (i % 4) {
      case 0: type = "ssta"; break;
      case 1: type = "sta"; break;
      case 2:
        type = "monte_carlo";
        extra = ", \"samples\": 2000";
        break;
      case 3:
        type = "size";
        extra = ", \"method\": \"reduced\"";
        break;
    }
  }
  return "{\"circuit\": \"" + key + "\", \"type\": \"" + type + "\"" + extra + "}";
}

struct CellResult {
  int jobs = 0;
  double wall_s = 0.0;
  std::vector<double> latencies_ms;
  double cache_hit_rate = 0.0;
};

CellResult run_cell(serve::Server& server, const std::string& mix, int clients,
                    int jobs_per_client) {
  const std::int64_t hits0 = server.metrics().cache_hits.value();
  const std::int64_t misses0 = server.metrics().cache_misses.value();

  std::vector<std::vector<double>> per_client(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  const Clock::time_point t0 = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client("127.0.0.1", server.port());
      std::vector<double>& lat = per_client[static_cast<std::size_t>(c)];
      lat.reserve(static_cast<std::size_t>(jobs_per_client));
      for (int i = 0; i < jobs_per_client; ++i) {
        const Clock::time_point start = Clock::now();
        // Re-upload every iteration: after the first round this is a pure
        // cache hit, which is the serving pattern the cache exists for.
        const std::string key = client.upload(kC17, "blif", "c17");
        const std::string id = client.submit(job_body(key, mix, i));
        util::JsonValue doc = client.wait(id, 0.001);
        if (doc.string_or("state", "") != "done") {
          std::fprintf(stderr, "FATAL: job %s ended %s: %s\n", id.c_str(),
                       doc.string_or("state", "?").c_str(),
                       doc.string_or("error", "").c_str());
          std::exit(1);
        }
        lat.push_back(ms_between(start, Clock::now()));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  CellResult r;
  r.wall_s = ms_between(t0, Clock::now()) / 1000.0;
  for (const auto& lat : per_client) {
    r.jobs += static_cast<int>(lat.size());
    r.latencies_ms.insert(r.latencies_ms.end(), lat.begin(), lat.end());
  }
  const double hits = static_cast<double>(server.metrics().cache_hits.value() - hits0);
  const double misses =
      static_cast<double>(server.metrics().cache_misses.value() - misses0);
  r.cache_hit_rate = hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
  return r;
}

/// Hard gate: the served SSTA answer must be bit-identical to the in-process
/// engine on the same BLIF text.
void check_bit_identity(serve::Server& server) {
  serve::Client client("127.0.0.1", server.port());
  const std::string key = client.upload(kC17, "blif", "c17");
  const std::string id =
      client.submit("{\"circuit\": \"" + key + "\", \"type\": \"ssta\"}");
  util::JsonValue doc = client.wait(id, 0.001);
  const util::JsonValue* result = doc.find("result");
  if (doc.string_or("state", "") != "done" || result == nullptr) {
    std::fprintf(stderr, "FATAL: identity job did not finish: %s\n",
                 doc.string_or("error", "").c_str());
    std::exit(1);
  }
  std::istringstream in(kC17);
  const netlist::Circuit circuit = netlist::read_blif(in);
  const ssta::DelayCalculator calc(circuit, {});
  const std::vector<double> speed(static_cast<std::size_t>(circuit.num_nodes()), 1.0);
  const ssta::TimingReport ref = ssta::run_ssta(calc, speed);
  if (result->number_or("mu", -1.0) != ref.circuit_delay.mu ||
      result->number_or("sigma", -1.0) != ref.circuit_delay.sigma()) {
    std::fprintf(stderr, "FATAL: served SSTA is not bit-identical to in-process\n");
    std::fprintf(stderr, "  served: mu=%.17g  in-process: mu=%.17g\n",
                 result->number_or("mu", -1.0), ref.circuit_delay.mu);
    std::exit(1);
  }
  std::printf("identity check: served SSTA == in-process (mu=%.17g)\n",
              ref.circuit_delay.mu);
}

}  // namespace

int main() {
  using namespace statsize;

  serve::ServerOptions options;
  options.port = 0;
  options.io_threads = 16;  // never the bottleneck at <= 8 clients
  serve::Server server(options);
  server.start();
  std::printf("serve_throughput: daemon on 127.0.0.1:%d\n", server.port());

  check_bit_identity(server);

  const std::vector<std::string> mixes = {"ssta", "mixed"};
  const std::vector<int> client_counts = {2, 8};
  const int jobs_per_client = 40;

  bench::JsonArtifact artifact("serve");
  std::printf("\n%-6s %8s %6s %10s %9s %9s %9s %10s\n", "mix", "clients", "jobs",
              "jobs/sec", "p50 ms", "p95 ms", "p99 ms", "hit rate");
  for (const std::string& mix : mixes) {
    for (const int clients : client_counts) {
      const CellResult r = run_cell(server, mix, clients, jobs_per_client);
      const double jps = r.wall_s > 0.0 ? static_cast<double>(r.jobs) / r.wall_s : 0.0;
      const double p50 = quantile_of(r.latencies_ms, 0.50);
      const double p95 = quantile_of(r.latencies_ms, 0.95);
      const double p99 = quantile_of(r.latencies_ms, 0.99);
      std::printf("%-6s %8d %6d %10.1f %9.2f %9.2f %9.2f %9.1f%%\n", mix.c_str(),
                  clients, r.jobs, jps, p50, p95, p99, 100.0 * r.cache_hit_rate);
      artifact.add_row()
          .field("mix", mix)
          .field("clients", clients)
          .field("jobs", r.jobs)
          .field("jobs_per_sec", jps)
          .field("p50_ms", p50)
          .field("p95_ms", p95)
          .field("p99_ms", p99)
          .field("cache_hit_rate", r.cache_hit_rate);
    }
  }
  artifact.write();
  server.stop();
  std::printf("serve_throughput: done\n");
  return 0;
}
