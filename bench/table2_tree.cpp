// Reproduces the paper's Table 2: the seven-NAND tree circuit of Fig. 3
// under range queries and {min area, min sigma, max sigma} at three pinned
// mean delays.
//
// The paper pinned mu at 5.8 / 6.5 / 7.2 inside its achievable range
// [5.4, 7.4]; our cell constants give a different absolute range, so the
// targets sit at the same relative positions (20% / 55% / 90% of the way
// from the fastest sizing).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/sizer.h"
#include "netlist/generators.h"

namespace {

using namespace statsize;

struct Row {
  std::string objective;
  std::string constraint;
  core::SizingResult result;
};

Row run_case(const netlist::Circuit& c, const core::SizingSpec& spec) {
  Row row;
  row.objective = spec.objective.description();
  row.constraint = spec.delay_constraint ? spec.delay_constraint->description() : "";
  core::SizerOptions opt;
  opt.method = core::Method::kFullSpace;  // the paper's formulation, exactly
  row.result = core::Sizer(c, spec).run(opt);
  return row;
}

void check(bool ok, const char* what, int& failures) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++failures;
}

}  // namespace

int main() {
  std::printf("=== Table 2: tree circuit under different objectives ===\n");
  const netlist::Circuit c = netlist::make_tree_circuit();
  bench::print_workload("tree", c);

  core::SizingSpec spec;
  const bench::MetricRange range = bench::metric_range(c, spec, 0.0);
  std::printf("# achievable mean-delay range: [%.2f, %.2f] (paper: [5.4, 7.4])\n", range.lo,
              range.hi);

  std::vector<Row> rows;
  spec.objective = core::Objective::min_area();
  rows.push_back(run_case(c, spec));
  spec.objective = core::Objective::min_delay(0.0);
  rows.push_back(run_case(c, spec));

  const double fracs[3] = {0.2, 0.55, 0.9};
  for (double f : fracs) {
    const double target = range.at(f);
    spec.delay_constraint = core::DelayConstraint::exactly(target);
    spec.objective = core::Objective::min_area();
    rows.push_back(run_case(c, spec));
    spec.objective = core::Objective::min_sigma();
    rows.push_back(run_case(c, spec));
    spec.objective = core::Objective::max_sigma();
    rows.push_back(run_case(c, spec));
  }

  std::printf("\n| %-12s | %-14s | %8s | %8s | %8s |\n", "objective", "constraint", "muTmax",
              "sigma", "sum S");
  std::printf("|--------------|----------------|----------|----------|----------|\n");
  for (const Row& r : rows) {
    std::printf("| %-12s | %-14s | %8.2f | %8.4f | %8.2f |%s\n", r.objective.c_str(),
                r.constraint.c_str(), r.result.circuit_delay.mu,
                r.result.circuit_delay.sigma(), r.result.sum_speed,
                r.result.converged ? "" : "  <- not converged");
  }

  // Qualitative criteria from the paper's discussion of Table 2.
  int failures = 0;
  std::printf("# criteria:\n");
  auto sigma_interval = [&](int base) {
    return rows[static_cast<std::size_t>(base + 2)].result.circuit_delay.sigma() -
           rows[static_cast<std::size_t>(base + 1)].result.circuit_delay.sigma();
  };
  // rows: 0 min-area, 1 min-mu, then per target [minA, minS, maxS] at 2,5,8.
  for (int i = 0; i < 3; ++i) {
    const int base = 2 + 3 * i;
    const auto& r_area = rows[static_cast<std::size_t>(base)].result;
    const auto& r_min = rows[static_cast<std::size_t>(base + 1)].result;
    const auto& r_max = rows[static_cast<std::size_t>(base + 2)].result;
    check(r_min.circuit_delay.sigma() <= r_area.circuit_delay.sigma() + 1e-4 &&
              r_max.circuit_delay.sigma() >= r_area.circuit_delay.sigma() - 1e-4,
          "min-area sigma lies inside [min sigma, max sigma]", failures);
    check(r_min.sum_speed >= r_area.sum_speed - 1e-3,
          "minimal sigma costs at least as much area as min-area", failures);
    check(r_max.circuit_delay.sigma() > r_min.circuit_delay.sigma(),
          "the sigma interval at fixed mu is non-degenerate", failures);
  }
  check(sigma_interval(2 + 3) > sigma_interval(2) && sigma_interval(2 + 3) > sigma_interval(8),
        "the sigma interval is widest for the middle mu target", failures);

  std::printf("\n%s\n", failures == 0 ? "TABLE 2 REPRODUCTION: all criteria hold"
                                      : "TABLE 2 REPRODUCTION: some criteria FAILED");
  return failures == 0 ? 0 : 1;
}
