// E6 — ablation of the formulation choice (DESIGN.md sec. 5.1): the paper's
// full-space NLP (every timing quantity a variable, LANCELOT-style solver)
// versus the reduced-space adjoint mode (speed factors only). Both must land
// on the same optimum; the interesting differences are iteration counts and
// wall time as circuits grow.

#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/full_space.h"
#include "core/sizer.h"
#include "netlist/generators.h"

int main() {
  using namespace statsize;

  std::printf("=== E6: formulation ablation — full-space (paper, eq. 17) vs n-ary\n"
              "        future-work mode vs reduced-space (adjoint) ===\n\n");
  std::printf("%-10s %-14s | %9s %6s %7s | %9s %6s | %9s %7s %7s | %8s\n", "circuit",
              "objective", "fs", "vars", "time", "fs-nary", "vars", "rs", "iters", "time",
              "maxdiff");

  int failures = 0;
  struct Case {
    std::string circuit;
    core::Objective objective;
  };
  const Case cases[] = {
      {"tree", core::Objective::min_delay(0.0)},
      {"tree", core::Objective::min_delay(3.0)},
      {"dag60", core::Objective::min_delay(0.0)},
      {"dag60", core::Objective::min_delay(3.0)},
      {"dag150", core::Objective::min_delay(3.0)},
      {"apex2", core::Objective::min_delay(0.0)},
  };

  for (const Case& cs : cases) {
    netlist::Circuit c = [&] {
      if (cs.circuit == "tree") return netlist::make_tree_circuit();
      if (cs.circuit == "apex2") return netlist::make_mcnc_like("apex2");
      netlist::RandomDagParams p;
      p.num_gates = cs.circuit == "dag60" ? 60 : 150;
      p.seed = 77;
      return netlist::make_random_dag(p);
    }();

    core::SizingSpec spec;
    spec.objective = cs.objective;
    const double k = cs.objective.sigma_weight;

    core::SizerOptions fo;
    fo.method = core::Method::kFullSpace;
    const core::SizingResult rf = core::Sizer(c, spec).run(fo);
    core::SizingSpec nspec = spec;
    nspec.nary_fanin_max = true;
    const core::SizingResult rn = core::Sizer(c, nspec).run(fo);
    core::SizerOptions ro;
    ro.method = core::Method::kReducedSpace;
    const core::SizingResult rr = core::Sizer(c, spec).run(ro);

    const int pairwise_vars = core::build_full_space(c, spec, 1.0).problem->num_vars();
    const int nary_vars = core::build_full_space(c, nspec, 1.0).problem->num_vars();

    const double mf = rf.delay_metric(k);
    const double mn = rn.delay_metric(k);
    const double mr = rr.delay_metric(k);
    const double rel = std::max(std::abs(mf - mr), std::abs(mn - mr)) / (1.0 + std::abs(mr));
    std::printf(
        "%-10s %-14s | %9.4f %5dv %6.2fs | %9.4f %5dv | %9.4f %6d %6.2fs | %8.1e%s\n",
        cs.circuit.c_str(), cs.objective.description().c_str(), mf, pairwise_vars,
        rf.wall_seconds, mn, nary_vars, mr, rr.iterations, rr.wall_seconds, rel,
        rf.converged && rn.converged ? "" : "  (fs not converged)");
    if (rel > 2e-3) {
      std::printf("  [FAIL] methods disagree beyond tolerance\n");
      ++failures;
    }
    if (nary_vars >= pairwise_vars) {
      std::printf("  [note] n-ary mode saved no variables on this circuit (%d vs %d)\n",
                  nary_vars, pairwise_vars);
    }
  }

  std::printf("\n%s\n", failures == 0
                            ? "E6 ABLATION: formulations agree; full-space pays the variable "
                              "count, reduced pays per-iteration sweeps"
                            : "E6 ABLATION: methods DISAGREE");
  return failures == 0 ? 0 : 1;
}
