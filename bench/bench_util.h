// Shared helpers for the reproduction benches.
//
// Every table/figure binary prints (a) the workload statistics, (b) the rows
// in the same layout as the paper, and (c) the qualitative criteria the
// reproduction is judged on (EXPERIMENTS.md records paper-vs-measured).

#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/sizer.h"
#include "netlist/circuit.h"
#include "ssta/ssta.h"
#include "util/json.h"

namespace statsize::bench {

/// Circuit mean-delay (or mu + k sigma) range across the two uniform sizings
/// [all gates at limit, all gates at 1].
struct MetricRange {
  double lo = 0.0;  ///< fastest (all gates at max speed)
  double hi = 0.0;  ///< slowest (all gates at 1)

  double at(double frac) const { return lo + frac * (hi - lo); }
};

inline MetricRange metric_range(const netlist::Circuit& c, const core::SizingSpec& spec,
                                double sigma_weight) {
  const ssta::DelayCalculator calc(c, spec.sigma_model);
  std::vector<double> s(static_cast<std::size_t>(c.num_nodes()), spec.max_speed);
  MetricRange r;
  r.lo = ssta::run_ssta(calc, s).circuit_delay.quantile_offset(sigma_weight);
  std::fill(s.begin(), s.end(), 1.0);
  r.hi = ssta::run_ssta(calc, s).circuit_delay.quantile_offset(sigma_weight);
  return r;
}

/// Method selection: STATSIZE_METHOD=full|reduced|auto (default auto: the
/// paper's full-space formulation up to `full_space_limit` gates, the
/// reduced-space adjoint mode beyond — full-space on thousand-gate circuits
/// reproduces the paper's hours-scale LANCELOT times, see Table 1 CPU column).
inline core::Method select_method(const netlist::Circuit& c, int full_space_limit = 300) {
  const char* env = std::getenv("STATSIZE_METHOD");
  const std::string mode = env != nullptr ? env : "auto";
  if (mode == "full") return core::Method::kFullSpace;
  if (mode == "reduced") return core::Method::kReducedSpace;
  return c.num_gates() <= full_space_limit ? core::Method::kFullSpace
                                           : core::Method::kReducedSpace;
}

inline const char* method_name(core::Method m) {
  return m == core::Method::kFullSpace ? "full-space" : "reduced";
}

inline void print_workload(const char* name, const netlist::Circuit& c) {
  const netlist::CircuitStats s = netlist::compute_stats(c);
  std::printf("# workload %-8s: %4d cells, %d PIs, %d POs, depth %d, avg fanin %.2f\n", name,
              s.num_gates, s.num_inputs, s.num_outputs, s.depth, s.avg_fanin);
}

/// Machine-readable bench results: a flat list of rows, each a flat object
/// of named fields, written as
///
///   { "bench": "<name>", "rows": [ { "gates": 1600, "threads": 4,
///     "ssta_wall_ms": 1.9, ... }, ... ] }
///
/// so scripts can diff runs without scraping the human tables. Fields keep
/// insertion order. The default output path is BENCH_<name>.json in the
/// current directory (where CI collects BENCH_* artifacts).
class JsonArtifact {
 public:
  explicit JsonArtifact(std::string bench) : bench_(std::move(bench)) {}

  class Row {
   public:
    Row& field(std::string key, double v) {
      fields_.push_back({std::move(key), Kind::kNumber, v, {}});
      return *this;
    }
    Row& field(std::string key, int v) {
      fields_.push_back({std::move(key), Kind::kInt, static_cast<double>(v), {}});
      return *this;
    }
    Row& field(std::string key, std::string v) {
      fields_.push_back({std::move(key), Kind::kString, 0.0, std::move(v)});
      return *this;
    }

   private:
    friend class JsonArtifact;
    enum class Kind { kNumber, kInt, kString };
    struct Field {
      std::string key;
      Kind kind;
      double num;
      std::string str;
    };
    std::vector<Field> fields_;
  };

  Row& add_row() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Writes the artifact (default BENCH_<name>.json) and prints the path.
  /// Returns false (after a diagnostic) if the file cannot be opened — benches
  /// report but keep their exit status, so a read-only CWD doesn't fail runs.
  bool write(const std::string& path = {}) const {
    const std::string out_path = path.empty() ? "BENCH_" + bench_ + ".json" : path;
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", out_path.c_str());
      return false;
    }
    util::JsonWriter w(out);
    w.begin_object();
    w.key("bench").value(bench_);
    w.key("rows").begin_array();
    for (const Row& row : rows_) {
      w.begin_object();
      for (const Row::Field& f : row.fields_) {
        w.key(f.key);
        switch (f.kind) {
          case Row::Kind::kNumber: w.value(f.num); break;
          case Row::Kind::kInt: w.value(static_cast<long>(f.num)); break;
          case Row::Kind::kString: w.value(f.str); break;
        }
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    out << "\n";
    std::printf("wrote %s\n", out_path.c_str());
    return true;
  }

 private:
  std::string bench_;
  std::vector<Row> rows_;
};

/// "41 m 13.5 s"-style CPU formatting, as in the paper's Table 1.
inline std::string format_cpu(double seconds) {
  char buf[64];
  if (seconds >= 60.0) {
    const int minutes = static_cast<int>(seconds / 60.0);
    std::snprintf(buf, sizeof(buf), "%d m %.1f s", minutes, seconds - 60.0 * minutes);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  }
  return buf;
}

}  // namespace statsize::bench
