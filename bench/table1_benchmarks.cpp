// Reproduces the paper's Table 1: statistical sizing of the three benchmark
// circuits (apex1 / apex2 / k2 — synthetic structural stand-ins with the
// paper's cell counts, see DESIGN.md sec. 2) under seven objective /
// constraint combinations each:
//
//   1. min sum(S)                                (area-min range endpoint)
//   2. min mu
//   3. min mu + sigma
//   4. min mu + 3 sigma
//   5. min sum(S)  s.t. mu <= D
//   6. min sum(S)  s.t. mu + sigma <= D
//   7. min sum(S)  s.t. mu + 3 sigma <= D
//
// The paper's absolute delays (and its HP-K260 CPU times) are not
// reproducible — netlists and cell constants differ — so D is placed at the
// same *relative* position inside the achievable mean-delay range as the
// paper's choices (~45% up from the fastest sizing). The qualitative
// reproduction criteria are asserted at the bottom and recorded in
// EXPERIMENTS.md.
//
// STATSIZE_METHOD=full forces the paper's full-space NLP everywhere (slow on
// the two big circuits, faithfully so); default is full-space up to 300 gates.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sizer.h"
#include "netlist/generators.h"

namespace {

using namespace statsize;

struct Row {
  std::string minimize;
  std::string constraint;
  core::SizingResult result;
  bool has_cpu = true;
};

Row run_case(const netlist::Circuit& c, const core::SizingSpec& spec, core::Method method) {
  Row row;
  row.minimize = spec.objective.description();
  row.constraint = spec.delay_constraint ? spec.delay_constraint->description() : "";
  core::SizerOptions opt;
  opt.method = method;
  row.result = core::Sizer(c, spec).run(opt);
  return row;
}

void print_rows(const char* name, int cells, const std::vector<Row>& rows) {
  std::printf("\n| %-6s | %5s | %-16s | %-22s | %8s | %7s | %8s | %-12s |\n", "name", "cells",
              "minimize", "constraint", "muTmax", "sigma", "sum S", "CPU");
  std::printf("|--------|-------|------------------|------------------------|----------|---------|----------|--------------|\n");
  bool first = true;
  for (const Row& r : rows) {
    std::printf("| %-6s | %5s | %-16s | %-22s | %8.2f | %7.3f | %8.1f | %-12s |%s\n",
                first ? name : "", first ? std::to_string(cells).c_str() : "",
                r.minimize.c_str(), r.constraint.c_str(), r.result.circuit_delay.mu,
                r.result.circuit_delay.sigma(), r.result.sum_speed,
                r.has_cpu ? bench::format_cpu(r.result.wall_seconds).c_str() : "",
                r.result.converged ? "" : "   <- not fully converged");
    first = false;
  }
}

void check(bool ok, const char* what, int& failures) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++failures;
}

}  // namespace

int main() {
  std::printf("=== Table 1: statistical sizing of benchmark circuits ===\n");
  int failures = 0;

  for (const char* name : {"apex2", "apex1", "k2"}) {
    const netlist::Circuit c = netlist::make_mcnc_like(name);
    bench::print_workload(name, c);
    const core::Method method = bench::select_method(c);
    std::printf("# method: %s\n", bench::method_name(method));

    core::SizingSpec spec;
    const bench::MetricRange range = bench::metric_range(c, spec, 0.0);
    const double bound = range.at(0.45);

    std::vector<Row> rows;
    // Row 1: the area-min endpoint is the identity sizing (S = 1): report it
    // by evaluation, like the paper's first (CPU-less) entry per circuit.
    spec.objective = core::Objective::min_area();
    spec.delay_constraint.reset();
    rows.push_back(run_case(c, spec, method));
    rows.back().has_cpu = false;

    for (double k : {0.0, 1.0, 3.0}) {
      spec.objective = core::Objective::min_delay(k);
      spec.delay_constraint.reset();
      rows.push_back(run_case(c, spec, method));
    }
    for (double k : {0.0, 1.0, 3.0}) {
      spec.objective = core::Objective::min_area();
      spec.delay_constraint = core::DelayConstraint::at_most(bound, k);
      rows.push_back(run_case(c, spec, method));
    }
    print_rows(name, c.num_gates(), rows);

    // Qualitative reproduction criteria (paper Table 1 shape).
    const Row& r_area = rows[0];
    const Row& r_mu = rows[1];
    const Row& r_mu3 = rows[3];
    const Row& r_c0 = rows[4];
    const Row& r_c1 = rows[5];
    const Row& r_c3 = rows[6];
    std::printf("# criteria (%s):\n", name);
    check(r_mu.result.circuit_delay.mu < 0.75 * r_area.result.circuit_delay.mu,
          "min-mu sizing cuts mean delay by >25% vs area-min", failures);
    check(r_mu.result.sum_speed > 1.5 * r_area.result.sum_speed,
          "...paying with a large area increase", failures);
    check(r_mu3.result.circuit_delay.mu >= r_mu.result.circuit_delay.mu - 5e-3,
          "mu+3sigma objective concedes a little mean...", failures);
    check(r_mu3.result.circuit_delay.sigma() <= r_mu.result.circuit_delay.sigma() + 1e-5,
          "...to reduce sigma", failures);
    // The paper's Table 1 shows sum-S *decreasing* from min-mu to
    // min-mu+3sigma (1989 -> 1843 on apex1). That direction is not determined
    // by the objectives: gates off the critical paths have zero delay
    // gradient, so their sizes are optimizer-arbitrary "flat" directions and
    // the area column of the unconstrained rows is only defined up to them.
    // We check the well-defined part: the areas stay within 1%.
    check(r_mu3.result.sum_speed <= 1.01 * r_mu.result.sum_speed,
          "mu+3sigma solution uses essentially no more area than min-mu", failures);
    check(r_c0.result.circuit_delay.mu <= bound + 0.01, "mu <= D constraint met and active",
          failures);
    check(r_c1.result.sum_speed >= r_c0.result.sum_speed - 1e-3 &&
              r_c3.result.sum_speed >= r_c1.result.sum_speed - 1e-3,
          "tighter statistical constraints need monotonically more area", failures);
    check(r_c3.result.circuit_delay.mu < r_c0.result.circuit_delay.mu &&
              r_c3.result.circuit_delay.sigma() < r_c0.result.circuit_delay.sigma(),
          "3-sigma-constrained circuit is faster and tighter than mean-constrained",
          failures);
  }

  std::printf("\n%s\n", failures == 0 ? "TABLE 1 REPRODUCTION: all criteria hold"
                                      : "TABLE 1 REPRODUCTION: some criteria FAILED");
  return failures == 0 ? 0 : 1;
}
