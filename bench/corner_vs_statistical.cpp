// E10 — the paper's motivating claim, quantified: "The statistical treatment
// of delay uncertainty can replace the traditional best case / typical /
// worst case delay analysis, which is known to give very pessimistic
// estimates in many cases" (sec. 1).
//
// Two sizing methodologies meet the same deadline D on the same circuits:
//
//   corner flow       size deterministically against worst-case gate delays
//                     (every cell at mu + 3 sigma_element, i.e. delay scaled
//                     by 1 + 3 kappa), constraint: worst-case delay <= D
//   statistical flow  the paper's method: min area s.t. mu + 3 sigma <= D
//
// Both results are then judged on the true statistical silicon: Monte Carlo
// yield at D and the area spent. The statistical flow should match the
// corner flow's (over-)achieved yield target (~99.8%) at visibly lower area;
// at tight deadlines the corner flow is *infeasible* even though the
// statistical flow still closes — margin stacking at its purest.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sizer.h"
#include "netlist/generators.h"
#include "ssta/monte_carlo.h"
#include "ssta/ssta.h"

int main() {
  using namespace statsize;

  const double kappa = 0.25;
  const double corner_factor = 1.0 + 3.0 * kappa;

  std::printf("=== E10: corner-methodology baseline vs statistical sizing ===\n");
  std::printf("(corner = every gate at mu+3sigma_element, factor %.2f)\n\n", corner_factor);
  std::printf("%-8s %10s | %10s %10s | %10s %10s | %s\n", "circuit", "deadline", "stat sumS",
              "yield", "corner sumS", "yield", "corner feasible?");

  int failures = 0;
  for (const std::string name : {"apex2", "apex1"}) {
    const netlist::Circuit c = netlist::make_mcnc_like(name);
    const netlist::CellLibrary corner_lib =
        netlist::scale_library_delays(c.library(), corner_factor);
    const netlist::Circuit corner_circuit = netlist::clone_with_library(c, corner_lib);

    core::SizingSpec stat_spec;
    stat_spec.sigma_model = {kappa, 0.0};
    const bench::MetricRange m3 = bench::metric_range(c, stat_spec, 3.0);
    // The corner flow's achievable (worst-case-delay) range sits far above
    // the statistical mu+3sigma range: circuit-level sigma is only ~1-2% of
    // mu, so a 75% per-element margin is enormous at circuit level. Probe
    // deadlines from both regimes.
    core::SizingSpec corner_probe;
    corner_probe.sigma_model = {0.0, 0.0};
    const bench::MetricRange wc = bench::metric_range(corner_circuit, corner_probe, 0.0);

    const double deadlines[] = {m3.at(0.3), m3.at(0.7), wc.at(0.25), wc.at(0.6)};
    for (const double deadline : deadlines) {

      // Statistical flow.
      stat_spec.objective = core::Objective::min_area();
      stat_spec.delay_constraint = core::DelayConstraint::at_most(deadline, 3.0);
      core::SizerOptions opt;
      opt.method = core::Method::kReducedSpace;
      const core::SizingResult rs = core::Sizer(c, stat_spec).run(opt);

      // Corner flow: deterministic sizing on the worst-case library. A small
      // kappa keeps the max operator smooth (kappa = 0 degenerates Clark to
      // the nonsmooth deterministic max and gradient methods stall on it);
      // the 2% sigma it induces is negligible against the 75% corner margin.
      core::SizingSpec corner_spec;
      corner_spec.sigma_model = {0.02, 0.0};
      corner_spec.objective = core::Objective::min_area();
      corner_spec.delay_constraint = core::DelayConstraint::at_most(deadline, 0.0);
      // The corner solves only need enough accuracy to compare areas and
      // yields; keep their iteration budget modest.
      core::SizerOptions corner_opt = opt;
      corner_opt.optimality_tol = 5e-4;
      corner_opt.max_outer_iterations = 15;
      corner_opt.max_inner_iterations = 1200;
      const core::SizingResult rc = core::Sizer(corner_circuit, corner_spec).run(corner_opt);

      // Judge both on the true statistical silicon.
      const ssta::DelayCalculator calc(c, {kappa, 0.0});
      ssta::MonteCarloOptions mco;
      mco.num_samples = 20000;
      mco.seed = 5;
      const double y_stat =
          ssta::run_monte_carlo(c, calc.all_delays(rs.speed), mco).yield(deadline);
      double y_corner = 0.0;
      if (rc.converged) {
        y_corner = ssta::run_monte_carlo(c, calc.all_delays(rc.speed), mco).yield(deadline);
      }

      std::printf("%-8s %10.2f | %10.1f %9.1f%% | %10.1f %9.1f%% | %s\n", name.c_str(),
                  deadline, rs.sum_speed, 100.0 * y_stat, rc.converged ? rc.sum_speed : 0.0,
                  100.0 * y_corner, rc.converged ? "yes" : "NO (margin-stacked)");

      // The analytic mu+3sigma guard targets 99.8%; on reconvergent netlists
      // the independence assumption understates the true sigma (see E9), so
      // the realized yield lands a few points short — the gap the paper's
      // future-work (and our canonical engine) addresses. Require >= 85%.
      if (!rs.converged || y_stat < 0.85) {
        std::printf("  [FAIL] statistical flow must close with high yield\n");
        ++failures;
      }
      if (rc.converged && rc.sum_speed < rs.sum_speed - 1e-6) {
        std::printf("  [FAIL] corner flow should not beat statistical area\n");
        ++failures;
      }
      if (rc.converged && y_corner < 0.999) {
        std::printf("  [FAIL] a feasible corner flow is over-margined: yield ~100%%\n");
        ++failures;
      }
    }
  }

  std::printf(
      "\nReading: whenever the corner flow closes at all, it pays more area for the\n"
      "same (saturated) yield; at tight deadlines it cannot close although the\n"
      "statistical flow still can — the pessimism the paper's introduction names.\n");
  std::printf("\n%s\n", failures == 0 ? "E10: all criteria hold" : "E10: criteria FAILED");
  return failures == 0 ? 0 : 1;
}
