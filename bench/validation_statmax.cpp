// E4 — validation of the analytic max operator (paper sec. 3, eqs. 10/12/13):
// the paper's enabling claim is that the Clark moment-matching formulas are
// accurate enough to replace the sampling of its predecessors [1,2]. This
// bench sweeps the (mean gap, sigma ratio) plane and compares the analytic
// mean / standard deviation of max(A, B) against a 10^6-sample Monte Carlo.

#include <cmath>
#include <cstdio>
#include <random>

#include "stat/clark.h"
#include "stat/normal.h"

int main() {
  using namespace statsize::stat;

  std::printf("=== E4: analytic Clark max vs Monte Carlo (1e6 samples per cell) ===\n");
  std::printf("A ~ N(0, 1); B ~ N(gap, ratio^2)\n\n");
  std::printf("%8s %8s | %9s %9s %8s | %9s %9s %8s\n", "gap", "ratio", "mu_clark", "mu_mc",
              "err", "sd_clark", "sd_mc", "err");

  const int n = 1000000;
  double worst_mu_err = 0.0;
  double worst_sd_err = 0.0;
  std::mt19937_64 rng(20260705);

  for (double gap : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    for (double ratio : {0.25, 1.0, 4.0}) {
      const NormalRV a{0.0, 1.0};
      const NormalRV b{gap, ratio * ratio};
      const NormalRV clark = clark_max(a, b);

      std::normal_distribution<double> da(0.0, 1.0);
      std::normal_distribution<double> db(gap, ratio);
      double sum = 0.0;
      double sum2 = 0.0;
      for (int i = 0; i < n; ++i) {
        const double m = std::max(da(rng), db(rng));
        sum += m;
        sum2 += m * m;
      }
      const double mc_mu = sum / n;
      const double mc_sd = std::sqrt(sum2 / n - mc_mu * mc_mu);
      const double mu_err = std::abs(clark.mu - mc_mu);
      const double sd_err = std::abs(clark.sigma() - mc_sd);
      worst_mu_err = std::max(worst_mu_err, mu_err);
      worst_sd_err = std::max(worst_sd_err, sd_err);
      std::printf("%8.2f %8.2f | %9.5f %9.5f %8.5f | %9.5f %9.5f %8.5f\n", gap, ratio,
                  clark.mu, mc_mu, mu_err, clark.sigma(), mc_sd, sd_err);
    }
  }

  // The mean is exact for two operands (Clark's formula is the true E[max]);
  // only MC noise (~1e-3 at 1e6 samples) should remain. The standard
  // deviation is exact in second moment too — both bounds are MC noise.
  std::printf("\nworst |mu error| = %.5f, worst |sd error| = %.5f\n", worst_mu_err,
              worst_sd_err);
  const bool ok = worst_mu_err < 5e-3 && worst_sd_err < 5e-3;
  std::printf("%s\n", ok ? "E4 VALIDATION: analytic moments exact to MC resolution"
                         : "E4 VALIDATION: FAILED");
  return ok ? 0 : 1;
}
