// ECO incremental timing bench (DESIGN.md §12): edit→invalidate→repropagate
// vs rebuild-everything-per-query on a k2-scale (1692-gate) random DAG.
//
// Baselines. Before the incremental engine, re-timing an edited circuit meant
// rebuilding it: Circuit is immutable once finalized, so a library-constant
// change forced clone_with_library + finalize + a full SSTA sweep. That
// rebuild path is the ≥10x reference. The bare SSTA re-sweep on the
// already-compiled view (the cheapest conceivable full recompute) is reported
// alongside, and against it the win is proportional to cone size — which is
// the point: Clark-max blends moments, so a changed arrival legitimately
// repropagates through its whole bitwise fanout cone, and re-analysis cost
// tracks that cone, not the circuit.
//
// Three hard gates — the binary exits non-zero when any fails, which is how
// scripts/check.sh pins the contract:
//
//   1. Bit-identity: after every apply_edits, the engine's cached arrivals
//      and Tmax must equal a from-scratch run_ssta on the same edited view at
//      the same speeds, to the last bit. Same for the ReducedEvaluator's
//      incrementally patched gradient vs a cold evaluator.
//   2. Speedup: the median single-gate edit must re-analyze at least 10x
//      faster than the rebuild-per-query path, at every measured --jobs level.
//   3. Cone scaling: per-edit wall time must correlate with repropagation
//      cone size (Pearson r >= 0.5 across edits spanning ~3 to ~1500 gates).
//
// Machine-readable results go to BENCH_eco.json.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/reduced_space.h"
#include "netlist/generators.h"
#include "runtime/runtime.h"
#include "ssta/incremental.h"
#include "ssta/ssta.h"

namespace {

using namespace statsize;

netlist::Circuit scaling_dag(int gates) {
  netlist::RandomDagParams p;
  p.num_gates = gates;
  p.num_inputs = 16 + gates / 20;
  p.depth = 8 + gates / 80;
  p.seed = 1000 + static_cast<std::uint64_t>(gates);
  return netlist::make_random_dag(p);
}

double wall_ms(const std::function<void()>& fn, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

bool bits_equal(const stat::NormalRV& a, const stat::NormalRV& b) {
  return a.mu == b.mu && a.var == b.var && !(a.mu != a.mu);  // NaN never passes
}

/// Engine caches vs a from-scratch SSTA on the engine's own (edited) view and
/// speeds. Any deviation is a determinism bug, not noise.
bool engine_matches_full(const ssta::IncrementalEngine& engine) {
  const ssta::DelayCalculator calc(engine.view(), engine.sigma_model());
  const ssta::TimingReport fresh = ssta::run_ssta(engine.view(), calc.all_delays(engine.speed()));
  if (fresh.arrival.size() != engine.arrivals().size()) return false;
  for (std::size_t i = 0; i < fresh.arrival.size(); ++i) {
    if (!bits_equal(fresh.arrival[i], engine.arrivals()[i])) return false;
  }
  return bits_equal(fresh.circuit_delay, engine.tmax());
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const double n = static_cast<double>(x.size());
  const double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  const double denom = std::sqrt(sxx * syy);
  return denom > 0.0 ? sxy / denom : 0.0;
}

}  // namespace

int main() {
  std::printf("=== ECO: incremental re-timing vs full recompute (DESIGN.md sec. 12) ===\n\n");

  constexpr int kGates = 1692;  // k2-scale, same generator as the scaling bench
  constexpr int kEdits = 32;
  const netlist::Circuit circuit = scaling_dag(kGates);
  const netlist::TimingView& view = circuit.view();
  const ssta::SigmaModel sigma{};

  bench::JsonArtifact artifact("eco");
  int failures = 0;

  std::printf("%6s | %12s %11s %13s | %9s %9s | %8s %6s\n", "jobs", "rebuild (ms)",
              "sweep (ms)", "edit med (ms)", "vs rebld", "vs sweep", "cone med", "corr");

  for (int jobs : {1, 4}) {
    runtime::set_threads(jobs);

    std::vector<double> speed(static_cast<std::size_t>(circuit.num_nodes()), 1.0);
    ssta::IncrementalEngine engine(view, speed, sigma);

    // Pre-refactor per-query cost: Circuit is immutable after finalize(), so
    // any library-constant ECO forced a structural rebuild (clone + finalize)
    // before the full sweep could even start.
    const double rebuild_ms = wall_ms(
        [&] {
          const netlist::Circuit rebuilt = netlist::clone_with_library(circuit, circuit.library());
          const ssta::DelayCalculator calc(rebuilt.view(), sigma);
          volatile double sink =
              ssta::run_ssta(rebuilt.view(), calc.all_delays(engine.speed())).circuit_delay.mu;
          (void)sink;
        },
        5);

    // Cheapest conceivable full recompute: re-sweep the already-compiled view.
    const double sweep_ms = wall_ms(
        [&] {
          const ssta::DelayCalculator calc(engine.view(), sigma);
          volatile double sink =
              ssta::run_ssta(engine.view(), calc.all_delays(engine.speed())).circuit_delay.mu;
          (void)sink;
        },
        5);

    // kEdits single-gate speed edits spread across the topo order — cones span
    // from a handful of gates (near the outputs) to most of the circuit (early
    // levels). Each edit is timed as the min over 4 real applications
    // (alternating between two distinct speeds so every application
    // propagates), then hard-checked against a from-scratch recompute.
    const std::vector<netlist::NodeId>& gates = engine.view().gates_in_topo_order();
    const std::size_t stride = std::max<std::size_t>(1, gates.size() / kEdits);
    std::vector<double> edit_ms;
    std::vector<double> dirty_counts;
    std::vector<double> cone_counts;
    int bit_mismatches = 0;
    for (std::size_t k = 0; k < static_cast<std::size_t>(kEdits); ++k) {
      const netlist::NodeId g = gates[(k * stride) % gates.size()];
      const double v1 = 1.0 + 0.25 * static_cast<double>((k % 8) + 1);
      const double v2 = v1 + 0.125;
      double best = 0.0;
      for (int rep = 0; rep < 4; ++rep) {
        const std::vector<ssta::TimingEdit> batch{
            ssta::TimingEdit::set_speed(g, rep % 2 == 0 ? v1 : v2)};
        const auto t0 = std::chrono::steady_clock::now();
        engine.apply_edits(batch);
        const auto t1 = std::chrono::steady_clock::now();
        const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (rep == 0 || ms < best) best = ms;
      }
      edit_ms.push_back(best);
      dirty_counts.push_back(static_cast<double>(engine.last_delay_recomputes()));
      cone_counts.push_back(static_cast<double>(engine.last_arrival_recomputes()));
      if (!engine_matches_full(engine)) ++bit_mismatches;
    }
    // One library-constant (NodeParams) edit rides along: same contract.
    {
      const netlist::NodeId g = gates[gates.size() / 2];
      netlist::NodeParams p = engine.view().node_params(g);
      p.t_int *= 1.10;
      p.c_in *= 0.90;
      engine.apply_edits({ssta::TimingEdit::set_params(g, p)});
      if (!engine_matches_full(engine)) ++bit_mismatches;
    }

    const double edit_med = median(edit_ms);
    const double speedup_rebuild = edit_med > 0.0 ? rebuild_ms / edit_med : 0.0;
    const double speedup_sweep = edit_med > 0.0 ? sweep_ms / edit_med : 0.0;
    const double dirty_med = median(dirty_counts);
    const double cone_med = median(cone_counts);
    const double corr = pearson(cone_counts, edit_ms);

    std::printf("%6d | %12.3f %11.3f %13.5f | %8.1fx %8.1fx | %8.0f %6.2f\n", jobs,
                rebuild_ms, sweep_ms, edit_med, speedup_rebuild, speedup_sweep, cone_med, corr);
    if (bit_mismatches > 0) {
      std::printf("  FAIL: %d/%d edits diverged bitwise from the full recompute\n",
                  bit_mismatches, kEdits + 1);
      ++failures;
    }
    if (speedup_rebuild < 10.0) {
      std::printf("  FAIL: median single-gate edit speedup %.1fx < 10x vs rebuild-per-query\n",
                  speedup_rebuild);
      ++failures;
    }
    if (corr < 0.5) {
      std::printf("  FAIL: edit wall time does not track cone size (r=%.2f < 0.5)\n", corr);
      ++failures;
    }

    artifact.add_row()
        .field("section", std::string("single_gate_edits"))
        .field("jobs", jobs)
        .field("gates", kGates)
        .field("edits", kEdits)
        .field("full_rebuild_ms", rebuild_ms)
        .field("full_sweep_ms", sweep_ms)
        .field("edit_median_ms", edit_med)
        .field("speedup_vs_rebuild", speedup_rebuild)
        .field("speedup_vs_sweep", speedup_sweep)
        .field("delay_recomputes_median", dirty_med)
        .field("arrival_recomputes_median", cone_med)
        .field("cone_wall_correlation", corr)
        .field("bit_mismatches", bit_mismatches);

    // Cone-scaling evidence: quartiles of the per-edit (cone, wall) pairs.
    // Small cones beat even the bare sweep by a wide margin; large cones
    // approach it — i.e. re-analysis cost tracks the cone, not the circuit.
    std::vector<std::size_t> order(cone_counts.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return cone_counts[a] < cone_counts[b]; });
    for (int q = 0; q < 4; ++q) {
      const std::size_t lo = order.size() * static_cast<std::size_t>(q) / 4;
      const std::size_t hi = order.size() * static_cast<std::size_t>(q + 1) / 4;
      std::vector<double> cones, walls;
      for (std::size_t i = lo; i < hi; ++i) {
        cones.push_back(cone_counts[order[i]]);
        walls.push_back(edit_ms[order[i]]);
      }
      const double qc = median(cones);
      const double qw = median(walls);
      std::printf("    cone quartile %d: median cone %5.0f gates, edit %8.5f ms "
                  "(%6.1fx vs sweep)\n",
                  q + 1, qc, qw, qw > 0.0 ? sweep_ms / qw : 0.0);
      artifact.add_row()
          .field("section", std::string("cone_scaling"))
          .field("jobs", jobs)
          .field("quartile", q + 1)
          .field("cone_median", qc)
          .field("edit_median_ms", qw)
          .field("speedup_vs_sweep", qw > 0.0 ? sweep_ms / qw : 0.0);
    }
  }

  // Gradient cache: the ReducedEvaluator's incrementally patched forward tape
  // must hand the adjoint the same bits a cold evaluator computes.
  {
    runtime::set_threads(4);
    std::vector<double> speed(static_cast<std::size_t>(circuit.num_nodes()), 1.0);
    core::ReducedEvaluator warm_eval(view, sigma);
    std::vector<double> g_warm;
    warm_eval.eval_with_grad(speed, 1.0, 0.0, g_warm);  // primes the tape

    const std::vector<netlist::NodeId>& gates = view.gates_in_topo_order();
    const double grad_full_ms = wall_ms(
        [&] {
          core::ReducedEvaluator cold(view, sigma);
          cold.eval_with_grad(speed, 1.0, 0.0, g_warm);
        },
        3);

    std::vector<double> grad_ms;
    int grad_mismatches = 0;
    double forward_recomputes = 0.0;
    for (std::size_t k = 0; k < 8; ++k) {
      const netlist::NodeId g = gates[(k * 211) % gates.size()];
      speed[static_cast<std::size_t>(g)] = 1.0 + 0.2 * static_cast<double>(k + 1);
      std::vector<double> g_inc;
      const auto t0 = std::chrono::steady_clock::now();
      const stat::NormalRV t_inc = warm_eval.eval_with_grad(speed, 1.0, 0.0, g_inc);
      const auto t1 = std::chrono::steady_clock::now();
      grad_ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
      forward_recomputes += static_cast<double>(warm_eval.last_forward_recomputes());

      core::ReducedEvaluator cold(view, sigma);
      std::vector<double> g_cold;
      const stat::NormalRV t_cold = cold.eval_with_grad(speed, 1.0, 0.0, g_cold);
      if (!bits_equal(t_inc, t_cold) || g_inc.size() != g_cold.size()) {
        ++grad_mismatches;
        continue;
      }
      for (std::size_t i = 0; i < g_inc.size(); ++i) {
        if (g_inc[i] != g_cold[i]) {
          ++grad_mismatches;
          break;
        }
      }
    }
    const double grad_med = median(grad_ms);
    std::printf("\ngradient: cold %0.3f ms, incremental median %0.5f ms (%0.1fx), "
                "mean forward cone %.0f gates, mismatches %d\n",
                grad_full_ms, grad_med, grad_med > 0.0 ? grad_full_ms / grad_med : 0.0,
                forward_recomputes / 8.0, grad_mismatches);
    if (grad_mismatches > 0) {
      std::printf("  FAIL: incremental gradients diverged bitwise from cold evaluation\n");
      ++failures;
    }
    artifact.add_row()
        .field("section", std::string("gradient_cache"))
        .field("jobs", 4)
        .field("gates", kGates)
        .field("grad_cold_ms", grad_full_ms)
        .field("grad_incremental_median_ms", grad_med)
        .field("forward_recomputes_mean", forward_recomputes / 8.0)
        .field("bit_mismatches", grad_mismatches);
  }

  artifact.write();
  if (failures > 0) {
    std::printf("\nRESULT: FAIL (%d gate(s) tripped)\n", failures);
    return 1;
  }
  std::printf("\nRESULT: PASS — incremental == full to the bit, >= 10x on single-gate ECOs, "
              "wall time tracks cone size\n");
  return 0;
}
