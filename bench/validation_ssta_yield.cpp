// E5 — circuit-level validation of the statistical timing engine and the
// paper's yield statements:
//   * sec. 1: circuit-level delay uncertainty is much smaller than the
//     25% element-level uncertainty, and corner analysis is pessimistic;
//   * sec. 4: a circuit sized so that mu / mu+sigma / mu+3sigma meets the
//     bound is met by ~50% / 84.1% / 99.8% of manufactured circuits.
// Monte Carlo (no independence assumption) is the referee, which also
// quantifies the reconvergence error the paper's future-work section names.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "netlist/generators.h"
#include "ssta/monte_carlo.h"
#include "ssta/ssta.h"

int main() {
  using namespace statsize;

  std::printf("=== E5: SSTA vs Monte Carlo + realized yield ===\n\n");
  std::printf("%-8s | %8s %8s | %8s %8s | %7s | %9s | %8s %8s %8s\n", "circuit", "mu_ssta",
              "mu_mc", "sd_ssta", "sd_mc", "sd/mu", "corner+3s", "y(mu)", "y(+1s)", "y(+3s)");

  int failures = 0;
  for (const std::string name : {"tree", "apex2", "apex1", "k2"}) {
    const netlist::Circuit c =
        name == "tree" ? netlist::make_tree_circuit() : netlist::make_mcnc_like(name);
    const ssta::SigmaModel sm{0.25, 0.0};
    const ssta::DelayCalculator calc(c, sm);
    const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
    const auto delays = calc.all_delays(speed);

    const ssta::TimingReport an = ssta::run_ssta(c, delays);
    ssta::MonteCarloOptions opt;
    opt.num_samples = 50000;
    opt.seed = 11;
    opt.truncate_negative_delays = false;
    const ssta::MonteCarloResult mc = ssta::run_monte_carlo(c, delays, opt);
    const double worst = ssta::run_sta(c, delays, ssta::Corner::kWorst).circuit_delay;

    const double y0 = mc.yield(an.circuit_delay.quantile_offset(0.0));
    const double y1 = mc.yield(an.circuit_delay.quantile_offset(1.0));
    const double y3 = mc.yield(an.circuit_delay.quantile_offset(3.0));
    std::printf("%-8s | %8.2f %8.2f | %8.3f %8.3f | %6.1f%% | %9.2f | %7.1f%% %7.1f%% %7.1f%%\n",
                name.c_str(), an.circuit_delay.mu, mc.mean, an.circuit_delay.sigma(),
                mc.stddev, 100.0 * an.circuit_delay.sigma() / an.circuit_delay.mu, worst,
                100.0 * y0, 100.0 * y1, 100.0 * y3);

    // Criteria. The tree has no reconvergence, so SSTA must track MC tightly
    // and the yield levels must land on the paper's 50/84.1/99.8. The big
    // reconvergent DAGs keep the qualitative claims (shrunken sigma, corner
    // pessimism) but their yields drift — that drift is the reconvergence
    // error the paper's future work targets, recorded in EXPERIMENTS.md.
    if (name == "tree") {
      if (std::abs(y0 - 0.50) > 0.03 || std::abs(y1 - 0.841) > 0.02 ||
          std::abs(y3 - 0.998) > 0.005) {
        std::printf("  [FAIL] tree yield levels should be ~50/84.1/99.8\n");
        ++failures;
      }
      if (std::abs(an.circuit_delay.mu - mc.mean) > 0.01 * mc.mean) {
        std::printf("  [FAIL] tree SSTA mean off MC by >1%%\n");
        ++failures;
      }
    }
    if (an.circuit_delay.sigma() / an.circuit_delay.mu > 0.15) {
      std::printf("  [FAIL] circuit-level sigma/mu should be far below the 25%% element level\n");
      ++failures;
    }
    if (an.circuit_delay.quantile_offset(3.0) >= worst) {
      std::printf("  [FAIL] statistical mu+3sigma should undercut the all-worst corner\n");
      ++failures;
    }
  }

  std::printf("\n%s\n", failures == 0 ? "E5 VALIDATION: all criteria hold"
                                      : "E5 VALIDATION: some criteria FAILED");
  return failures == 0 ? 0 : 1;
}
