// E7 — the scalability trend behind Table 1's CPU column ("the method is
// able to deal with circuits of up to a few thousand gates"). Three sections:
//
//   1. Circuit-size sweep: solves min-mu sizing at increasing gate counts and
//      reports wall time for both methods (the full-space NLP is capped at
//      300 gates by default; STATSIZE_METHOD=full lifts that to reproduce the
//      paper's hours-scale behaviour).
//   2. Thread-scaling sweep: SSTA propagation and Monte Carlo on the largest
//      DAG across --jobs 1/2/4/hw, with a determinism cross-check (parallel
//      results must be bit-identical to 1-thread results; see DESIGN.md §7).
//   3. Serial-island sweep: AugLagModel::hess_vec and the reduced-space
//      adjoint gradient on a k2-scale DAG across the same thread counts —
//      the two kernels that used to run single-threaded, now parallel via
//      ScatterPlan with the same exact-equality determinism contract.
//   4. TimingView sweep: the historical per-Node pointer walk vs the flat CSR
//      view path (DESIGN.md §8) for delay evaluation, SSTA, and corner STA at
//      one thread — a pure memory-layout comparison whose results must be
//      bit-identical (the view copies the same doubles and keeps every fold
//      order), so any mismatch hard-fails the benchmark.
//   5. Granularity advisor: the pre-solve audit's static per-level
//      serial/parallel decision table and cutoff on the k2-scale DAG, then
//      SSTA timed with the cutoff off vs applied (bit-identical by contract,
//      re-verified here).
//
// Machine-readable results go to BENCH_scaling.json via bench::JsonArtifact.
// STATSIZE_SCALING_SECTIONS=sizing,threads,serial_islands,timing_view,granularity
// (comma-separated) restricts the run to the named sections; unset runs all.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "analyze/graph_audit.h"
#include "bench_util.h"
#include "core/full_space.h"
#include "core/reduced_space.h"
#include "core/sizer.h"
#include "netlist/generators.h"
#include "nlp/auglag.h"
#include "runtime/runtime.h"
#include "ssta/monte_carlo.h"
#include "ssta/ssta.h"
#include "stat/clark.h"

namespace {

using namespace statsize;

netlist::Circuit scaling_dag(int gates) {
  netlist::RandomDagParams p;
  p.num_gates = gates;
  p.num_inputs = 16 + gates / 20;
  p.depth = 8 + gates / 80;
  p.seed = 1000 + static_cast<std::uint64_t>(gates);
  return netlist::make_random_dag(p);
}

double wall_ms(const std::function<void()>& fn, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

bool reports_equal(const ssta::TimingReport& a, const ssta::TimingReport& b) {
  if (a.arrival.size() != b.arrival.size()) return false;
  for (std::size_t i = 0; i < a.arrival.size(); ++i) {
    if (a.arrival[i].mu != b.arrival[i].mu || a.arrival[i].var != b.arrival[i].var) return false;
  }
  return a.circuit_delay.mu == b.circuit_delay.mu && a.circuit_delay.var == b.circuit_delay.var;
}

/// Section filter: STATSIZE_SCALING_SECTIONS=threads,serial_islands runs only
/// those sections (comma-separated; unset/empty = all). Lets the check.sh
/// scaling smoke gate exercise the bit-identity cross-checks without paying
/// for the sizing solves.
bool section_enabled(const char* name) {
  const char* env = std::getenv("STATSIZE_SCALING_SECTIONS");
  if (env == nullptr || env[0] == '\0') return true;
  const std::string list(env);
  const std::string needle(name);
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = std::min(list.find(',', pos), list.size());
    if (list.compare(pos, comma - pos, needle) == 0) return true;
    pos = comma + 1;
  }
  return false;
}

}  // namespace

int main() {
  std::printf("=== E7: CPU-time scaling of statistical sizing (min mu) ===\n\n");
  std::printf("%8s %8s | %12s %10s | %12s %10s\n", "gates", "depth", "reduced", "mu",
              "full-space", "mu");

  const char* env = std::getenv("STATSIZE_METHOD");
  const bool force_full = env != nullptr && std::string(env) == "full";

  bench::JsonArtifact artifact("scaling");
  int failures = 0;
  if (section_enabled("sizing")) {
  for (int gates : {50, 100, 200, 400, 800, 1600}) {
    const netlist::Circuit c = scaling_dag(gates);

    core::SizingSpec spec;
    spec.objective = core::Objective::min_delay(0.0);

    core::SizerOptions ro;
    ro.method = core::Method::kReducedSpace;
    const core::SizingResult rr = core::Sizer(c, spec).run(ro);
    artifact.add_row()
        .field("section", "sizing")
        .field("gates", gates)
        .field("depth", c.depth())
        .field("method", "reduced")
        .field("wall_ms", rr.wall_seconds * 1e3)
        .field("mu", rr.circuit_delay.mu);

    std::string fs_time = "(skipped)";
    std::string fs_mu = "";
    if (gates <= 300 || force_full) {
      core::SizerOptions fo;
      fo.method = core::Method::kFullSpace;
      const core::SizingResult rf = core::Sizer(c, spec).run(fo);
      fs_time = bench::format_cpu(rf.wall_seconds);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", rf.circuit_delay.mu);
      fs_mu = buf;
      artifact.add_row()
          .field("section", "sizing")
          .field("gates", gates)
          .field("depth", c.depth())
          .field("method", "full-space")
          .field("wall_ms", rf.wall_seconds * 1e3)
          .field("mu", rf.circuit_delay.mu);
      if (rf.circuit_delay.mu > rr.circuit_delay.mu * 1.01) {
        std::printf("  [FAIL] full-space clearly worse than reduced at %d gates\n", gates);
        ++failures;
      }
    }
    std::printf("%8d %8d | %12s %10.2f | %12s %10s\n", gates, c.depth(),
                bench::format_cpu(rr.wall_seconds).c_str(), rr.circuit_delay.mu,
                fs_time.c_str(), fs_mu.c_str());
  }
  }  // section "sizing"

  // ---- Thread scaling: analysis kernels on the largest DAG.
  const int hw = runtime::hardware_threads();
  std::vector<int> thread_counts = {1, 2, 4, hw};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(std::unique(thread_counts.begin(), thread_counts.end()),
                      thread_counts.end());

  if (section_enabled("threads")) {
  std::printf("\n--- thread scaling (1600-gate DAG, %d hardware threads) ---\n", hw);
  std::printf("%8s | %12s %8s | %12s %8s | %s\n", "threads", "ssta ms", "speedup", "mc ms",
              "speedup", "deterministic");

  const netlist::Circuit big = scaling_dag(1600);
  const ssta::DelayCalculator calc(big, {});
  const std::vector<double> speed(static_cast<std::size_t>(big.num_nodes()), 1.0);
  const auto delays = calc.all_delays(speed);
  ssta::MonteCarloOptions mco;
  mco.num_samples = 20000;
  mco.seed = 7;

  runtime::set_threads(1);
  const ssta::TimingReport ssta_ref = ssta::run_ssta(big, delays);
  const ssta::MonteCarloResult mc_ref = ssta::run_monte_carlo(big, delays, mco);
  double ssta_ms1 = 0.0;
  double mc_ms1 = 0.0;
  double mc_ms4 = 0.0;
  bool any_slower = false;
  for (const int t : thread_counts) {
    runtime::set_threads(t);
    const bool det = reports_equal(ssta::run_ssta(big, delays), ssta_ref) &&
                     ssta::run_monte_carlo(big, delays, mco).samples == mc_ref.samples;
    if (!det) {
      std::printf("  [FAIL] results at %d threads differ from the 1-thread reference\n", t);
      ++failures;
    }
    const double ssta_ms = wall_ms([&] { ssta::run_ssta(big, delays); }, 5);
    const double mc_ms = wall_ms([&] { ssta::run_monte_carlo(big, delays, mco); }, 3);
    if (t == 1) {
      ssta_ms1 = ssta_ms;
      mc_ms1 = mc_ms;
    }
    if (t == 4) mc_ms4 = mc_ms;
    if (t > 1 && (ssta_ms > ssta_ms1 * 1.05 || mc_ms > mc_ms1 * 1.05)) any_slower = true;
    std::printf("%8d | %12.3f %7.2fx | %12.3f %7.2fx | %s\n", t, ssta_ms, ssta_ms1 / ssta_ms,
                mc_ms, mc_ms1 / mc_ms, det ? "yes" : "NO");
    artifact.add_row()
        .field("section", "threads")
        .field("gates", big.num_gates())
        .field("threads", t)
        .field("ssta_wall_ms", ssta_ms)
        .field("ssta_speedup", ssta_ms > 0.0 ? ssta_ms1 / ssta_ms : 0.0)
        .field("mc_wall_ms", mc_ms)
        .field("mc_speedup", mc_ms > 0.0 ? mc_ms1 / mc_ms : 0.0)
        .field("mc_samples", mco.num_samples)
        .field("deterministic", det ? "yes" : "no");
  }
  runtime::set_threads(1);

  // Speedup is advisory: a warning on capable hardware, never a failure on
  // boxes (CI containers) that expose too few cores to show scaling.
  if (hw >= 4) {
    if (mc_ms4 > 0.0 && mc_ms4 > 0.5 * mc_ms1) {
      std::printf("  [WARN] Monte Carlo speedup below 2x at 4 threads on this machine\n");
    }
    if (any_slower) {
      std::printf("  [WARN] a parallel run was slower than its 1-thread fallback\n");
    }
  } else {
    std::printf("  [note] only %d hardware thread(s): speedup cannot be demonstrated here\n", hw);
  }
  }  // section "threads"

  // ---- Serial-island scaling: hess_vec and the adjoint gradient sweep on a
  // k2-scale circuit (the larger Table 1 benchmarks run ~1700 gates). The
  // circuit itself is shared with the timing_view and granularity sections.
  const netlist::Circuit k2 = scaling_dag(1692);

  if (section_enabled("serial_islands")) {
  std::printf("\n--- hess_vec / adjoint scaling (%d-gate DAG) ---\n", k2.num_gates());
  std::printf("%8s | %12s %8s | %12s %8s | %s\n", "threads", "hessvec ms", "speedup",
              "adjoint ms", "speedup", "deterministic");

  core::SizingSpec island_spec;
  island_spec.objective = core::Objective::min_delay(0.0);
  const std::vector<double> ones(static_cast<std::size_t>(k2.num_nodes()), 1.0);
  const core::FullSpaceFormulation form = core::build_full_space(k2, island_spec, ones);
  const nlp::Problem& prob = *form.problem;
  const std::vector<double> mult(static_cast<std::size_t>(prob.num_constraints()), 0.25);
  const std::vector<double> x = prob.start();
  std::vector<double> v(static_cast<std::size_t>(prob.num_vars()));
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::sin(0.37 * static_cast<double>(i)) + 0.1;
  }

  runtime::set_threads(1);
  nlp::AugLagModel model(prob, mult, 10.0);
  std::vector<double> scratch_grad;
  model.eval(x, &scratch_grad);  // snapshot the element Hessians at x
  std::vector<double> hv_ref;
  model.hess_vec(v, hv_ref);
  const core::ReducedEvaluator red(k2, island_spec.sigma_model);
  std::vector<double> grad_ref;
  const stat::NormalRV t_ref = red.eval_with_grad(ones, 1.0, 0.5, grad_ref);

  double hv_ms1 = 0.0;
  double adj_ms1 = 0.0;
  double hv_ms4 = 0.0;
  double adj_ms4 = 0.0;
  for (const int t : thread_counts) {
    runtime::set_threads(t);
    std::vector<double> hv;
    model.hess_vec(v, hv);
    std::vector<double> grad;
    const stat::NormalRV tr = red.eval_with_grad(ones, 1.0, 0.5, grad);
    const bool det =
        hv == hv_ref && grad == grad_ref && tr.mu == t_ref.mu && tr.var == t_ref.var;
    if (!det) {
      std::printf("  [FAIL] hess_vec/adjoint at %d threads differ from 1-thread reference\n", t);
      ++failures;
    }
    std::vector<double> hv_scratch;
    std::vector<double> grad_scratch;
    const double hv_ms = wall_ms([&] { model.hess_vec(v, hv_scratch); }, 5);
    const double adj_ms =
        wall_ms([&] { red.eval_with_grad(ones, 1.0, 0.5, grad_scratch); }, 5);
    if (t == 1) {
      hv_ms1 = hv_ms;
      adj_ms1 = adj_ms;
    }
    if (t == 4) {
      hv_ms4 = hv_ms;
      adj_ms4 = adj_ms;
    }
    std::printf("%8d | %12.3f %7.2fx | %12.3f %7.2fx | %s\n", t, hv_ms, hv_ms1 / hv_ms, adj_ms,
                adj_ms1 / adj_ms, det ? "yes" : "NO");
    artifact.add_row()
        .field("section", "serial_islands")
        .field("gates", k2.num_gates())
        .field("threads", t)
        .field("hess_vec_wall_ms", hv_ms)
        .field("hess_vec_speedup", hv_ms > 0.0 ? hv_ms1 / hv_ms : 0.0)
        .field("adjoint_wall_ms", adj_ms)
        .field("adjoint_speedup", adj_ms > 0.0 ? adj_ms1 / adj_ms : 0.0)
        .field("deterministic", det ? "yes" : "no");
  }
  runtime::set_threads(1);

  // Advisory like the Monte Carlo check above: demand >1.5x at 4 threads
  // only where the hardware can actually show it.
  if (hw >= 4) {
    if (hv_ms4 > 0.0 && hv_ms1 / hv_ms4 < 1.5) {
      std::printf("  [WARN] hess_vec speedup below 1.5x at 4 threads on this machine\n");
    }
    if (adj_ms4 > 0.0 && adj_ms1 / adj_ms4 < 1.5) {
      std::printf("  [WARN] adjoint speedup below 1.5x at 4 threads on this machine\n");
    }
  } else {
    std::printf("  [note] only %d hardware thread(s): speedup cannot be demonstrated here\n", hw);
  }
  }  // section "serial_islands"

  // Shared by the timing_view and granularity sections below.
  const ssta::SigmaModel sm{};
  const ssta::DelayCalculator k2_calc(k2, sm);
  std::vector<double> sp(static_cast<std::size_t>(k2.num_nodes()));
  for (std::size_t i = 0; i < sp.size(); ++i) {
    sp[i] = 1.0 + 0.21 * static_cast<double>(i % 9);  // uneven, deterministic
  }

  if (section_enabled("timing_view")) {
  // ---- TimingView retarget: Node walk vs flat CSR view, single-threaded so
  // the comparison is purely about memory layout. The references below are
  // the pre-view traversals kept alive here as a yardstick; results must be
  // bit-identical because the view stores copies of the same doubles and the
  // production sweeps kept every fold order.
  std::printf("\n--- timing_view: Node walk vs CSR view (%d-gate DAG, 1 thread) ---\n",
              k2.num_gates());
  std::printf("%10s | %12s %12s %8s | %s\n", "sweep", "node ms", "view ms", "speedup",
              "identical");
  runtime::set_threads(1);

  auto node_all_delays = [&](std::vector<stat::NormalRV>& out) {
    out.assign(static_cast<std::size_t>(k2.num_nodes()), stat::NormalRV{});
    for (const netlist::NodeId id : k2.topo_order()) {
      const netlist::Node& n = k2.node(id);
      if (n.kind != netlist::NodeKind::kGate) continue;
      const netlist::CellType& cell = k2.library().cell(n.cell);
      double load = n.wire_load + (n.is_output ? n.pad_load : 0.0);
      for (const netlist::NodeId fo : n.fanouts) {
        load += k2.library().cell(k2.node(fo).cell).c_in * sp[static_cast<std::size_t>(fo)];
      }
      const double mu = cell.t_int + cell.c * load / sp[static_cast<std::size_t>(id)];
      out[static_cast<std::size_t>(id)] = stat::NormalRV::from_sigma(mu, sm.sigma(mu));
    }
  };
  auto node_ssta = [&](const std::vector<stat::NormalRV>& d, std::vector<stat::NormalRV>& arr) {
    arr.assign(static_cast<std::size_t>(k2.num_nodes()), stat::NormalRV{});
    for (const netlist::NodeId id : k2.topo_order()) {
      const netlist::Node& n = k2.node(id);
      if (n.kind == netlist::NodeKind::kPrimaryInput) continue;
      stat::NormalRV u = arr[static_cast<std::size_t>(n.fanins[0])];
      for (std::size_t i = 1; i < n.fanins.size(); ++i) {
        u = stat::clark_max(u, arr[static_cast<std::size_t>(n.fanins[i])]);
      }
      arr[static_cast<std::size_t>(id)] = stat::add(u, d[static_cast<std::size_t>(id)]);
    }
  };
  auto node_sta = [&](const std::vector<stat::NormalRV>& d, std::vector<double>& arr) {
    arr.assign(static_cast<std::size_t>(k2.num_nodes()), 0.0);
    for (const netlist::NodeId id : k2.topo_order()) {
      const netlist::Node& n = k2.node(id);
      if (n.kind == netlist::NodeKind::kPrimaryInput) continue;
      double u = arr[static_cast<std::size_t>(n.fanins[0])];
      for (std::size_t i = 1; i < n.fanins.size(); ++i) {
        u = std::max(u, arr[static_cast<std::size_t>(n.fanins[i])]);
      }
      arr[static_cast<std::size_t>(id)] = u + d[static_cast<std::size_t>(id)].quantile_offset(3.0);
    }
  };

  std::vector<stat::NormalRV> node_delays;
  node_all_delays(node_delays);
  const std::vector<stat::NormalRV> view_delays = k2_calc.all_delays(sp);
  bool delays_same = node_delays.size() == view_delays.size();
  for (std::size_t i = 0; delays_same && i < node_delays.size(); ++i) {
    delays_same = node_delays[i].mu == view_delays[i].mu &&
                  node_delays[i].var == view_delays[i].var;
  }

  std::vector<stat::NormalRV> node_arr;
  node_ssta(view_delays, node_arr);
  const ssta::TimingReport view_ssta = ssta::run_ssta(k2, view_delays);
  bool ssta_same = node_arr.size() == view_ssta.arrival.size();
  for (std::size_t i = 0; ssta_same && i < node_arr.size(); ++i) {
    ssta_same = node_arr[i].mu == view_ssta.arrival[i].mu &&
                node_arr[i].var == view_ssta.arrival[i].var;
  }

  std::vector<double> node_arr_sta;
  node_sta(view_delays, node_arr_sta);
  const ssta::StaReport view_sta = ssta::run_sta(k2, view_delays, ssta::Corner::kWorst);
  const bool sta_same = node_arr_sta == view_sta.arrival;

  struct ViewSweep {
    const char* name;
    bool identical;
    std::function<void()> node_fn;
    std::function<void()> view_fn;
  };
  std::vector<stat::NormalRV> rv_scratch;
  std::vector<double> d_scratch;
  const ViewSweep sweeps[] = {
      {"delays", delays_same, [&] { node_all_delays(rv_scratch); },
       [&] { k2_calc.all_delays(sp); }},
      {"ssta", ssta_same, [&] { node_ssta(view_delays, rv_scratch); },
       [&] { ssta::run_ssta(k2, view_delays); }},
      {"sta", sta_same, [&] { node_sta(view_delays, d_scratch); },
       [&] { ssta::run_sta(k2, view_delays, ssta::Corner::kWorst); }},
  };
  for (const ViewSweep& s : sweeps) {
    if (!s.identical) {
      std::printf("  [FAIL] %s: view path differs from the Node-walk reference\n", s.name);
      ++failures;
    }
    const double node_ms = wall_ms(s.node_fn, 5);
    const double view_ms = wall_ms(s.view_fn, 5);
    std::printf("%10s | %12.3f %12.3f %7.2fx | %s\n", s.name, node_ms, view_ms,
                node_ms / view_ms, s.identical ? "yes" : "NO");
    artifact.add_row()
        .field("section", "timing_view")
        .field("gates", k2.num_gates())
        .field("sweep", s.name)
        .field("node_ms", node_ms)
        .field("view_ms", view_ms)
        .field("identical", s.identical ? "yes" : "no");
  }
  }  // section "timing_view"

  if (section_enabled("granularity")) {
  // ---- Granularity advisor: the pre-solve audit's static serial-cutoff
  // decision on the same k2-scale DAG, then SSTA timed with the cutoff off
  // (every level offered to the pool) versus applied. The cutoff is a pure
  // wall-clock lever — the determinism contract makes serial and pooled level
  // execution bit-identical, and that is re-verified here.
  const int adv_threads = std::max(2, std::min(4, hw));
  analyze::GranularityCostModel cost;
  cost.threads = adv_threads;
  const netlist::TimingViewStats k2_stats = netlist::compute_view_stats(k2.view());
  const analyze::GranularityAdvice advice =
      analyze::advise_granularity(k2_stats.level_widths, cost);
  std::printf("\n--- granularity advisor (%d-gate DAG, cost model at %d threads) ---\n",
              k2.num_gates(), adv_threads);
  std::printf("serial cutoff: width < %zu | %d of %zu levels advised serial "
              "(%.1f%% of gates) | modeled: naive %.0f ns, advised %.0f ns\n",
              advice.serial_cutoff, advice.serial_levels, advice.levels.size(),
              100.0 * advice.serial_gate_fraction, advice.est_naive_parallel_ns,
              advice.est_advised_ns);
  artifact.add_row()
      .field("section", "granularity_advisor")
      .field("gates", k2.num_gates())
      .field("threads", adv_threads)
      .field("chunk_dispatch_ns", cost.chunk_dispatch_ns)
      .field("gate_cost_ns", cost.gate_cost_ns)
      .field("serial_cutoff", static_cast<int>(advice.serial_cutoff))
      .field("levels", static_cast<int>(advice.levels.size()))
      .field("serial_levels", advice.serial_levels)
      .field("serial_gate_fraction", advice.serial_gate_fraction)
      .field("est_naive_parallel_ns", advice.est_naive_parallel_ns)
      .field("est_advised_ns", advice.est_advised_ns);
  for (const analyze::LevelDecision& d : advice.levels) {
    artifact.add_row()
        .field("section", "granularity_levels")
        .field("level", d.level)
        .field("width", static_cast<int>(d.width))
        .field("advised", d.parallel ? "parallel" : "serial")
        .field("serial_ns", d.serial_ns)
        .field("parallel_ns", d.parallel_ns);
  }

  const std::vector<stat::NormalRV> k2_delays = k2_calc.all_delays(sp);
  runtime::set_threads(adv_threads);
  const std::size_t saved_cutoff = runtime::level_serial_cutoff();
  runtime::set_level_serial_cutoff(0);
  const ssta::TimingReport cutoff_ref = ssta::run_ssta(k2, k2_delays);
  const double naive_ms = wall_ms([&] { ssta::run_ssta(k2, k2_delays); }, 5);
  runtime::set_level_serial_cutoff(advice.serial_cutoff);
  const bool cutoff_det = reports_equal(ssta::run_ssta(k2, k2_delays), cutoff_ref);
  const double advised_ms = wall_ms([&] { ssta::run_ssta(k2, k2_delays); }, 5);
  runtime::set_level_serial_cutoff(saved_cutoff);
  runtime::set_threads(1);
  if (!cutoff_det) {
    std::printf("  [FAIL] SSTA with the advised cutoff differs from cutoff-0 results\n");
    ++failures;
  }
  std::printf("ssta at %d threads: cutoff 0 %.3f ms, advised cutoff %.3f ms (%.2fx) | %s\n",
              adv_threads, naive_ms, advised_ms, naive_ms / advised_ms,
              cutoff_det ? "deterministic" : "NOT DETERMINISTIC");
  artifact.add_row()
      .field("section", "granularity_ssta")
      .field("gates", k2.num_gates())
      .field("threads", adv_threads)
      .field("cutoff0_wall_ms", naive_ms)
      .field("advised_wall_ms", advised_ms)
      .field("serial_cutoff", static_cast<int>(advice.serial_cutoff))
      .field("deterministic", cutoff_det ? "yes" : "no");
  }  // section "granularity"

  artifact.write();
  std::printf("\nE7 SCALING: %s\n", failures == 0 ? "completed (trend recorded above)"
                                                  : "FAILURES detected");
  return failures == 0 ? 0 : 1;
}
