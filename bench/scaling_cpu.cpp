// E7 — the scalability trend behind Table 1's CPU column ("the method is
// able to deal with circuits of up to a few thousand gates"). Sweeps circuit
// size, solves min-mu sizing, and reports wall time for both methods (the
// full-space NLP is capped at 300 gates by default; STATSIZE_METHOD=full
// lifts that to reproduce the paper's hours-scale behaviour).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "core/sizer.h"
#include "netlist/generators.h"

int main() {
  using namespace statsize;

  std::printf("=== E7: CPU-time scaling of statistical sizing (min mu) ===\n\n");
  std::printf("%8s %8s | %12s %10s | %12s %10s\n", "gates", "depth", "reduced", "mu",
              "full-space", "mu");

  const char* env = std::getenv("STATSIZE_METHOD");
  const bool force_full = env != nullptr && std::string(env) == "full";

  int failures = 0;
  double prev_reduced = 0.0;
  for (int gates : {50, 100, 200, 400, 800, 1600}) {
    netlist::RandomDagParams p;
    p.num_gates = gates;
    p.num_inputs = 16 + gates / 20;
    p.depth = 8 + gates / 80;
    p.seed = 1000 + static_cast<std::uint64_t>(gates);
    const netlist::Circuit c = netlist::make_random_dag(p);

    core::SizingSpec spec;
    spec.objective = core::Objective::min_delay(0.0);

    core::SizerOptions ro;
    ro.method = core::Method::kReducedSpace;
    const core::SizingResult rr = core::Sizer(c, spec).run(ro);

    std::string fs_time = "(skipped)";
    std::string fs_mu = "";
    if (gates <= 300 || force_full) {
      core::SizerOptions fo;
      fo.method = core::Method::kFullSpace;
      const core::SizingResult rf = core::Sizer(c, spec).run(fo);
      fs_time = bench::format_cpu(rf.wall_seconds);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", rf.circuit_delay.mu);
      fs_mu = buf;
      if (rf.circuit_delay.mu > rr.circuit_delay.mu * 1.01) {
        std::printf("  [FAIL] full-space clearly worse than reduced at %d gates\n", gates);
        ++failures;
      }
    }
    std::printf("%8d %8d | %12s %10.2f | %12s %10s\n", gates, c.depth(),
                bench::format_cpu(rr.wall_seconds).c_str(), rr.circuit_delay.mu,
                fs_time.c_str(), fs_mu.c_str());
    prev_reduced = rr.wall_seconds;
  }
  (void)prev_reduced;

  std::printf("\nE7 SCALING: %s\n", failures == 0 ? "completed (trend recorded above)"
                                                  : "FAILURES detected");
  return failures == 0 ? 0 : 1;
}
